// RequestBatcher: coalesced drains must reproduce direct per-shard
// execution bitwise, auto-drain must fire, and submitting + draining from
// inside pool tasks (the request-handler-on-the-pool shape) must complete
// without deadlock — the drain's ParallelFor falls back to inline slices
// on a worker thread.

#include "serving/request_batcher.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "serving/sharded_server.h"

namespace svt {
namespace {

ServingOptions TestOptions(int shards, uint64_t seed) {
  ServingOptions o;
  o.num_shards = shards;
  o.seed = seed;
  o.mode = ShardMode::kAutoReset;
  o.svt.epsilon = 1.0;
  o.svt.cutoff = 2;
  o.svt.monotonic = true;
  o.svt.numeric_output_fraction = 0.2;
  return o;
}

std::vector<double> MakeAnswers(size_t n, uint64_t seed) {
  Rng gen(seed);
  std::vector<double> answers(n);
  for (size_t i = 0; i < n; ++i) answers[i] = gen.NextUniform(-25.0, 25.0);
  return answers;
}

TEST(RequestBatcherTest, DrainedResponsesMatchDirectExecution) {
  const std::vector<double> answers = MakeAnswers(2400, 50);
  const int kRequests = 30;

  // Reference: the same per-shard request order executed directly on an
  // identically-seeded server.
  auto direct = ShardedSvtServer::Create(TestOptions(4, 21)).value();
  std::vector<std::vector<Response>> expect(kRequests);
  for (int r = 0; r < kRequests; ++r) {
    const uint64_t key = static_cast<uint64_t>(r) * 7;
    direct->Execute(key, std::span(answers).subspan((r * 80) % 1600, 300),
                    0.5, &expect[r]);
  }

  auto server = ShardedSvtServer::Create(TestOptions(4, 21)).value();
  RequestBatcher batcher(server.get());
  std::vector<std::vector<Response>> got(kRequests);
  for (int r = 0; r < kRequests; ++r) {
    const uint64_t key = static_cast<uint64_t>(r) * 7;
    batcher.Submit(key, std::span(answers).subspan((r * 80) % 1600, 300),
                   0.5, &got[r]);
  }
  EXPECT_EQ(batcher.pending(), static_cast<size_t>(kRequests));
  EXPECT_EQ(batcher.Drain(), static_cast<size_t>(kRequests));
  EXPECT_EQ(batcher.pending(), 0u);
  for (int r = 0; r < kRequests; ++r) {
    ASSERT_FALSE(got[r].empty()) << "request " << r;
    EXPECT_EQ(got[r], expect[r]) << "request " << r;
  }
}

TEST(RequestBatcherTest, RepeatedDrainsReuseShardBuffers) {
  // Several drain cycles through the same batcher must keep matching the
  // direct execution — the shard buffer is cleared (capacity kept), never
  // carried over.
  const std::vector<double> answers = MakeAnswers(500, 51);
  auto direct = ShardedSvtServer::Create(TestOptions(2, 22)).value();
  auto server = ShardedSvtServer::Create(TestOptions(2, 22)).value();
  RequestBatcher batcher(server.get());
  for (int cycle = 0; cycle < 10; ++cycle) {
    std::vector<Response> expect_a, expect_b, got_a, got_b;
    direct->Execute(0, answers, 0.0, &expect_a);
    direct->Execute(1, answers, -1.0, &expect_b);
    batcher.Submit(0, answers, 0.0, &got_a);
    batcher.Submit(1, answers, -1.0, &got_b);
    batcher.Drain();
    ASSERT_EQ(got_a, expect_a) << "cycle " << cycle;
    ASSERT_EQ(got_b, expect_b) << "cycle " << cycle;
  }
}

TEST(RequestBatcherTest, AutoDrainFiresAtThreshold) {
  const std::vector<double> answers = MakeAnswers(100, 52);
  auto server = ShardedSvtServer::Create(TestOptions(2, 23)).value();
  RequestBatcher::Options opts;
  opts.auto_drain_pending = 4;
  RequestBatcher batcher(server.get(), opts);
  std::vector<std::vector<Response>> got(4);
  for (int r = 0; r < 3; ++r) {
    batcher.Submit(static_cast<uint64_t>(r), answers, 0.0, &got[r]);
  }
  EXPECT_EQ(batcher.pending(), 3u);
  batcher.Submit(3, answers, 0.0, &got[3]);  // hits the threshold
  EXPECT_EQ(batcher.pending(), 0u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(got[r].size(), answers.size()) << "request " << r;
  }
}

TEST(RequestBatcherTest, DestructorDrainsPending) {
  const std::vector<double> answers = MakeAnswers(100, 53);
  auto server = ShardedSvtServer::Create(TestOptions(2, 24)).value();
  std::vector<Response> got;
  {
    RequestBatcher batcher(server.get());
    batcher.Submit(0, answers, 0.0, &got);
  }
  EXPECT_EQ(got.size(), answers.size());
}

TEST(RequestBatcherTest, DestructorUnderLoadFlushesEverything) {
  // Regression for the busy-spin final flush: the destructor used to loop
  // `while (Drain() > 0 || pending() > 0)` on the try-lock drain path,
  // spinning hot whenever the shards were slow. The flush is now blocking
  // — it waits on the drain and shard mutexes like any other executor —
  // so destroying a batcher with pending requests while other threads
  // hammer the same shards directly must still deliver every response
  // exactly once (and, under the TSan CI job, without a reported race).
  const std::vector<double> answers = MakeAnswers(3000, 57);
  auto server = ShardedSvtServer::Create(TestOptions(2, 26)).value();

  const int kRequests = 12;
  std::vector<std::vector<Response>> got(static_cast<size_t>(kRequests));
  std::atomic<bool> busy_started{false};
  std::atomic<bool> stop{false};
  // Direct executors keep both shard mutexes contended for the whole
  // destructor flush.
  std::vector<std::thread> busy;
  for (int s = 0; s < 2; ++s) {
    busy.emplace_back([&, s] {
      std::vector<Response> sink;
      while (!stop.load(std::memory_order_relaxed)) {
        sink.clear();
        server->ExecuteOnShard(s, answers, 0.0, &sink);
        busy_started.store(true, std::memory_order_relaxed);
      }
    });
  }
  {
    RequestBatcher batcher(server.get());
    for (int r = 0; r < kRequests; ++r) {
      batcher.Submit(static_cast<uint64_t>(r) * 11, answers, 0.0,
                     &got[static_cast<size_t>(r)]);
    }
    while (!busy_started.load(std::memory_order_relaxed)) {
      std::this_thread::yield();
    }
    // Destructor runs here, against busy shards.
  }
  stop.store(true);
  for (std::thread& t : busy) t.join();
  for (int r = 0; r < kRequests; ++r) {
    EXPECT_EQ(got[static_cast<size_t>(r)].size(), answers.size())
        << "request " << r;
  }
}

TEST(RequestBatcherTest, SubmitAndDrainFromPoolTasksCompletes) {
  // Request handlers running on the global pool submit their batch and
  // then call Drain() themselves. With the pool fully subscribed this
  // exercises the nested-ParallelFor inline fallback and the batcher's
  // non-blocking drain lock; a regression deadlocks instead of finishing.
  const std::vector<double> answers = MakeAnswers(400, 54);
  auto server = ShardedSvtServer::Create(TestOptions(4, 25)).value();
  RequestBatcher batcher(server.get());

  const int kHandlers = 2 * ThreadPool::HardwareThreads() + 2;
  std::vector<std::vector<Response>> got(static_cast<size_t>(kHandlers));
  std::atomic<int> done{0};
  for (int h = 0; h < kHandlers; ++h) {
    ThreadPool::Global().Submit([&, h] {
      batcher.Submit(static_cast<uint64_t>(h), answers, 0.0,
                     &got[static_cast<size_t>(h)]);
      batcher.Drain();
      done.fetch_add(1);
    });
  }
  while (done.load() < kHandlers) std::this_thread::yield();
  // No settling drain needed: a handler's Drain() only returns without
  // executing its own request when another drain is in flight, and that
  // drain re-checks for newly pending requests before returning. Once
  // every handler's Drain() has returned, nothing may be left pending.
  EXPECT_EQ(batcher.pending(), 0u);
  for (int h = 0; h < kHandlers; ++h) {
    EXPECT_EQ(got[static_cast<size_t>(h)].size(), answers.size())
        << "handler " << h;
  }
  // Aggregate accounting survives the concurrency.
  EXPECT_EQ(server->TotalStats().queries,
            static_cast<int64_t>(kHandlers) *
                static_cast<int64_t>(answers.size()));
}

}  // namespace
}  // namespace svt
