#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/result.h"

namespace svt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::FailedPrecondition("fp").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("oor").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("int").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Exhausted("ex").code(), StatusCode::kExhausted);
  EXPECT_EQ(Status::NumericalError("num").code(),
            StatusCode::kNumericalError);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("epsilon").ToString(),
            "InvalidArgument: epsilon");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::Exhausted("budget");
  EXPECT_EQ(os.str(), "Exhausted: budget");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::Exhausted("x"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNumericalError),
            "NumericalError");
}

Status FailsFirst() { return Status::OutOfRange("first"); }

Status Propagates() {
  SVT_RETURN_NOT_OK(FailsFirst());
  return Status::Internal("unreached");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  SVT_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  Result<int> bad = QuarterEven(6);  // 6/2 = 3, odd
  EXPECT_FALSE(bad.ok());
}

TEST(CheckDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SVT_CHECK(1 == 2) << "boom", "SVT_CHECK failed");
}

TEST(CheckDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(SVT_CHECK_OK(Status::Internal("bad state")), "bad state");
}

}  // namespace
}  // namespace svt
