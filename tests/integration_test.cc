// End-to-end integration tests across modules: generated data → private
// top-c selection → metrics; frequent-itemset pipeline; the §6 qualitative
// orderings on a reduced scale.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/exponential_mechanism.h"
#include "core/svt.h"
#include "core/top_select.h"
#include "data/fpgrowth.h"
#include "data/generators.h"
#include "data/queries.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace svt {
namespace {

TEST(IntegrationTest, PrivateTopItemsOnGeneratedZipf) {
  Rng rng(1);
  DatasetSpec spec = ZipfSpec();
  spec.num_items = 2000;  // reduced scale, same construction
  const ScoreVector scores = GenerateScores(spec, rng);

  const int c = 20;
  const double threshold = PaperThreshold(scores.scores(), c);

  // EM with a healthy budget should achieve low SER on a Zipf head.
  EmOptions em;
  em.epsilon = 1.0;
  em.num_selections = c;
  em.monotonic = true;
  const auto em_sel =
      ExponentialMechanism::SelectTopC(scores.scores(), em, rng).value();
  EXPECT_LT(ScoreErrorRate(em_sel, scores.scores(), c), 0.2);

  // SVT-S with the optimal allocation should be competitive.
  SvtOptions svt;
  svt.epsilon = 1.0;
  svt.cutoff = c;
  svt.monotonic = true;
  svt.allocation = BudgetAllocation::Optimal(c, true);
  const ScoreVector shuffled = scores.Shuffled(rng);
  const auto svt_sel =
      SelectTopCWithSvt(shuffled.scores(), threshold, svt, rng).value();
  EXPECT_LT(ScoreErrorRate(svt_sel, shuffled.scores(), c), 0.5);
}

TEST(IntegrationTest, PrivateFrequentItemsetPipeline) {
  // The Lee–Clifton use case end to end: mine itemset candidates with
  // FP-growth, select the top-c privately, compare to the true top-c.
  Rng rng(2);
  std::vector<double> profile(40);
  for (int i = 0; i < 40; ++i) profile[i] = 2000.0 / (i + 1);
  const TransactionDb db =
      GenerateTransactions(ScoreVector(profile), 3000, rng);

  FpGrowthOptions mine;
  mine.min_support = 50;
  mine.max_itemset_size = 2;
  const auto candidates = MineFrequentItemsets(db, mine);
  ASSERT_GT(candidates.size(), 20u);

  std::vector<double> supports;
  supports.reserve(candidates.size());
  for (const auto& s : candidates) {
    supports.push_back(static_cast<double>(s.support));
  }

  const int c = 10;
  EmOptions em;
  em.epsilon = 2.0;
  em.num_selections = c;
  em.monotonic = true;
  const auto selected =
      ExponentialMechanism::SelectTopC(supports, em, rng).value();
  EXPECT_EQ(selected.size(), static_cast<size_t>(c));
  // Private selection should capture most of the top support mass.
  EXPECT_LT(ScoreErrorRate(selected, supports, c), 0.35);
}

TEST(IntegrationTest, SupportsFromTransactionsMatchQueryLayer) {
  Rng rng(3);
  std::vector<double> profile(25);
  for (int i = 0; i < 25; ++i) profile[i] = 500.0 / (i + 1);
  const TransactionDb db =
      GenerateTransactions(ScoreVector(profile), 800, rng);
  const auto batch = EvaluateAllItemSupports(db);
  for (ItemId i = 0; i < db.num_items(); i += 5) {
    EXPECT_DOUBLE_EQ(batch[i], ItemSupportQuery(i).Evaluate(db));
  }
}

// The headline qualitative results of §6 at reduced scale:
//  (1) SVT-S (any allocation) beats SVT-DPBook;
//  (2) the 1:c^{2/3} allocation beats 1:1;
//  (3) EM beats SVT-S.
TEST(IntegrationTest, PaperQualitativeOrderings) {
  Rng rng(4);
  DatasetSpec spec = ZipfSpec();
  spec.num_items = 3000;
  const ScoreVector scores = GenerateScores(spec, rng);

  SweepConfig cfg;
  cfg.c_values = {50};
  cfg.epsilon = 0.1;
  cfg.runs = 12;
  cfg.seed = 99;
  const std::vector<MethodConfig> methods = {
      MethodConfig::SvtDpBook(),
      MethodConfig::SvtStandard(AllocationPolicy::kOneToOne),
      MethodConfig::SvtStandard(AllocationPolicy::kOptimal),
      MethodConfig::Em()};
  const auto series = RunSelectionSweep(scores, cfg, methods).value();

  const double dpbook = series[0].cells[0].ser.mean();
  const double one_to_one = series[1].cells[0].ser.mean();
  const double optimal = series[2].cells[0].ser.mean();
  const double em = series[3].cells[0].ser.mean();

  EXPECT_LT(optimal, dpbook);   // (1) improved SVT beats the book version
  EXPECT_LE(optimal, one_to_one + 0.05);  // (2) optimal allocation helps
  EXPECT_LE(em, optimal + 0.05);          // (3) EM at least as good
}

TEST(IntegrationTest, InteractiveStreamingUseCase) {
  // SVT's interactive calling pattern: queries arrive one at a time and
  // the mechanism answers online, spending budget only on positives.
  Rng rng(5);
  SvtOptions o;
  o.epsilon = 0.5;
  o.cutoff = 3;
  o.monotonic = true;
  o.allocation = BudgetAllocation::Optimal(3, true);
  auto mech = SparseVector::Create(o, &rng).value();

  int positives = 0;
  int64_t processed = 0;
  Rng query_rng(6);
  while (!mech->exhausted() && processed < 10000) {
    // A stream where ~1 in 50 queries is far above threshold.
    const bool hot = query_rng.NextBernoulli(0.02);
    const double answer = hot ? 500.0 : query_rng.NextUniform(0.0, 50.0);
    const Response r = mech->Process(answer, 400.0);
    ++processed;
    positives += r.is_positive() ? 1 : 0;
  }
  EXPECT_EQ(positives, 3);
  EXPECT_GT(processed, 10);  // many free negatives before exhaustion
}

}  // namespace
}  // namespace svt
