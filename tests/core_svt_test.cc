#include "core/svt.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace svt {
namespace {

SvtOptions BasicOptions(double epsilon = 1.0, int cutoff = 3) {
  SvtOptions o;
  o.epsilon = epsilon;
  o.sensitivity = 1.0;
  o.cutoff = cutoff;
  return o;
}

TEST(SvtOptionsTest, ValidatesEpsilon) {
  SvtOptions o = BasicOptions();
  o.epsilon = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o.epsilon = -1.0;
  EXPECT_FALSE(o.Validate().ok());
  o.epsilon = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(o.Validate().ok());
}

TEST(SvtOptionsTest, ValidatesSensitivityCutoffFraction) {
  SvtOptions o = BasicOptions();
  o.sensitivity = 0.0;
  EXPECT_FALSE(o.Validate().ok());

  o = BasicOptions();
  o.cutoff = 0;
  EXPECT_FALSE(o.Validate().ok());

  o = BasicOptions();
  o.numeric_output_fraction = 1.0;
  EXPECT_FALSE(o.Validate().ok());
  o.numeric_output_fraction = -0.1;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(SparseVectorTest, CreateRejectsBadArgs) {
  Rng rng(1);
  SvtOptions bad = BasicOptions();
  bad.epsilon = -1;
  EXPECT_FALSE(SparseVector::Create(bad, &rng).ok());
  EXPECT_FALSE(SparseVector::Create(BasicOptions(), nullptr).ok());
}

TEST(SparseVectorTest, EmitsAtMostCutoffPositives) {
  Rng rng(2);
  SvtOptions o = BasicOptions(/*epsilon=*/10.0, /*cutoff=*/5);
  auto mech = SparseVector::Create(o, &rng).value();
  int positives = 0;
  // Huge answers: everything above threshold.
  for (int i = 0; i < 1000 && !mech->exhausted(); ++i) {
    if (mech->Process(1e6, 0.0).is_positive()) ++positives;
  }
  EXPECT_EQ(positives, 5);
  EXPECT_TRUE(mech->exhausted());
  EXPECT_EQ(mech->positives_emitted(), 5);
}

TEST(SparseVectorTest, NegativesAreFreeAndUnlimited) {
  Rng rng(3);
  auto mech = SparseVector::Create(BasicOptions(10.0, 1), &rng).value();
  for (int i = 0; i < 10000; ++i) {
    ASSERT_FALSE(mech->exhausted());
    const Response r = mech->Process(-1e6, 0.0);
    ASSERT_FALSE(r.is_positive());
  }
  EXPECT_EQ(mech->queries_processed(), 10000);
  EXPECT_EQ(mech->positives_emitted(), 0);
}

TEST(SparseVectorTest, ProcessAfterExhaustionDies) {
  Rng rng(4);
  auto mech = SparseVector::Create(BasicOptions(10.0, 1), &rng).value();
  while (!mech->exhausted()) mech->Process(1e9, 0.0);
  EXPECT_DEATH(mech->Process(0.0, 0.0), "exhausted");
}

TEST(SparseVectorTest, ResetRestoresFreshRun) {
  Rng rng(5);
  auto mech = SparseVector::Create(BasicOptions(10.0, 2), &rng).value();
  while (!mech->exhausted()) mech->Process(1e9, 0.0);
  mech->Reset();
  EXPECT_FALSE(mech->exhausted());
  EXPECT_EQ(mech->positives_emitted(), 0);
  EXPECT_EQ(mech->queries_processed(), 0);
  // Still usable.
  mech->Process(0.0, 0.0);
  EXPECT_EQ(mech->queries_processed(), 1);
}

TEST(SparseVectorTest, DeterministicGivenSeed) {
  const std::vector<double> answers = {5.0, -3.0, 10.0, 0.0, 7.0, -1.0};
  Rng rng1(42), rng2(42);
  auto m1 = SparseVector::Create(BasicOptions(0.5, 3), &rng1).value();
  auto m2 = SparseVector::Create(BasicOptions(0.5, 3), &rng2).value();
  const std::vector<Response> r1 = m1->Run(answers, 2.0);
  const std::vector<Response> r2 = m2->Run(answers, 2.0);
  EXPECT_EQ(ToString(r1), ToString(r2));
}

TEST(SparseVectorTest, BatchRunStopsAtCutoff) {
  Rng rng(6);
  auto mech = SparseVector::Create(BasicOptions(100.0, 2), &rng).value();
  const std::vector<double> answers(50, 1e9);
  const std::vector<Response> rs = mech->Run(answers, 0.0);
  // With overwhelming answers and tiny noise relative to 1e9 the first two
  // queries are positive and the run aborts there.
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_TRUE(rs[0].is_positive());
  EXPECT_TRUE(rs[1].is_positive());
}

TEST(SparseVectorTest, PerQueryThresholdsRespected) {
  Rng rng(7);
  // epsilon huge => noise negligible.
  auto mech = SparseVector::Create(BasicOptions(1e6, 3), &rng).value();
  const std::vector<double> answers = {10.0, 10.0, 10.0};
  const std::vector<double> thresholds = {20.0, 5.0, 20.0};
  const std::vector<Response> rs = mech->Run(answers, thresholds);
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_FALSE(rs[0].is_positive());
  EXPECT_TRUE(rs[1].is_positive());
  EXPECT_FALSE(rs[2].is_positive());
}

// The footnote under Figure 1: running SVT on (q_i, T_i) is the same as
// running it on (q_i − T_i) against threshold 0. With a shared seed the
// outputs must be identical realization by realization.
TEST(SparseVectorTest, ThresholdSequenceFootnoteEquivalence) {
  const std::vector<double> answers = {3.0, 8.0, -2.0, 5.5, 9.0, 1.0};
  const std::vector<double> thresholds = {2.0, 9.0, -3.0, 5.0, 4.0, 2.0};
  std::vector<double> shifted(answers.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    shifted[i] = answers[i] - thresholds[i];
  }
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng1(seed), rng2(seed);
    auto m1 = SparseVector::Create(BasicOptions(0.8, 2), &rng1).value();
    auto m2 = SparseVector::Create(BasicOptions(0.8, 2), &rng2).value();
    const auto r1 = m1->Run(answers, thresholds);
    const auto r2 = m2->Run(shifted, 0.0);
    EXPECT_EQ(ToString(r1), ToString(r2)) << "seed=" << seed;
  }
}

TEST(SparseVectorTest, BudgetSplitMatchesAllocation) {
  Rng rng(8);
  SvtOptions o = BasicOptions(1.0, 4);
  o.allocation = BudgetAllocation::Optimal(4, /*monotonic=*/false);
  auto mech = SparseVector::Create(o, &rng).value();
  const BudgetSplit split = mech->budget();
  EXPECT_NEAR(split.epsilon2 / split.epsilon1, std::pow(8.0, 2.0 / 3.0),
              1e-12);
  EXPECT_NEAR(split.total(), 1.0, 1e-12);
}

TEST(SparseVectorTest, SpecMatchesAlg1Parameterization) {
  Rng rng(9);
  auto mech = SparseVector::Create(BasicOptions(1.0, 5), &rng).value();
  const VariantSpec& spec = mech->spec();
  EXPECT_DOUBLE_EQ(spec.rho_scale, 1.0 / 0.5);
  EXPECT_DOUBLE_EQ(spec.nu_scale, 2.0 * 5 / 0.5);
  EXPECT_EQ(spec.actual_privacy, PrivacyClass::kPureDp);
}

TEST(SparseVectorTest, MonotonicOptionHalvesQueryNoise) {
  Rng rng(10);
  SvtOptions gen = BasicOptions(1.0, 5);
  SvtOptions mono = gen;
  mono.monotonic = true;
  auto m_gen = SparseVector::Create(gen, &rng).value();
  auto m_mono = SparseVector::Create(mono, &rng).value();
  EXPECT_DOUBLE_EQ(m_gen->query_noise_scale(),
                   2.0 * m_mono->query_noise_scale());
}

TEST(SparseVectorTest, NumericOutputMode) {
  Rng rng(11);
  SvtOptions o = BasicOptions(10.0, 3);
  o.numeric_output_fraction = 0.5;
  auto mech = SparseVector::Create(o, &rng).value();
  bool saw_numeric = false;
  for (int i = 0; i < 100 && !mech->exhausted(); ++i) {
    const Response r = mech->Process(1000.0, 0.0);
    if (r.is_positive()) {
      EXPECT_EQ(r.outcome, Outcome::kAboveValue);
      // Fresh Laplace noise around the true value with scale cΔ/ε3 = 0.6;
      // within ±40 scales with overwhelming probability.
      EXPECT_NEAR(r.value, 1000.0, 40.0 * 0.6);
      saw_numeric = true;
    }
  }
  EXPECT_TRUE(saw_numeric);
}

// Statistical behavior: with a clearly-above answer the positive rate
// approaches 1; with clearly-below it approaches 0.
TEST(SparseVectorTest, SeparationStatistics) {
  Rng rng(12);
  int above_positives = 0;
  int below_positives = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    auto mech = SparseVector::Create(BasicOptions(1.0, 1), &rng).value();
    if (mech->Process(100.0, 0.0).is_positive()) ++above_positives;
    mech->Reset();
    if (mech->Process(-100.0, 0.0).is_positive()) ++below_positives;
  }
  EXPECT_GT(above_positives, trials * 0.99);
  EXPECT_LT(below_positives, trials * 0.01);
}

// Borderline answers come out positive about half the time (symmetric
// noise around threshold).
TEST(SparseVectorTest, BorderlineIsFairCoin) {
  Rng rng(13);
  int positives = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    auto mech = SparseVector::Create(BasicOptions(1.0, 1), &rng).value();
    if (mech->Process(0.0, 0.0).is_positive()) ++positives;
  }
  EXPECT_NEAR(positives / static_cast<double>(trials), 0.5, 0.02);
}

class CutoffSweep : public ::testing::TestWithParam<int> {};

TEST_P(CutoffSweep, NeverExceedsCutoff) {
  const int c = GetParam();
  Rng rng(100 + c);
  SvtOptions o = BasicOptions(0.1, c);
  auto mech = SparseVector::Create(o, &rng).value();
  int positives = 0;
  for (int i = 0; i < 5000 && !mech->exhausted(); ++i) {
    // Noisy region around threshold: both outcomes occur.
    if (mech->Process((i % 3 == 0) ? 5.0 : -5.0, 0.0).is_positive()) {
      ++positives;
    }
  }
  EXPECT_LE(positives, c);
  EXPECT_EQ(positives, mech->positives_emitted());
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, CutoffSweep,
                         ::testing::Values(1, 2, 3, 8, 25, 100));

}  // namespace
}  // namespace svt
