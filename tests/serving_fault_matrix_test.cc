// Fault-matrix determinism suite: the serving determinism contract
// ("faults change WHICH requests are accepted, never the noise stream of
// the ones that run") checked as a table of fault legs crossed with every
// vecmath dispatch level.
//
// For each leg the same submission schedule runs against a faulted server
// and the accepted (kOk) responses are compared bitwise against a fresh
// fault-free server fed ONLY the accepted requests in order — i.e. the
// restricted fault-free run the contract promises. Each leg is also run
// twice (bitwise run-to-run reproducibility, including which faults fire)
// and the per-leg transcripts are compared across dispatch levels.
//
// Legs that make time-dependent decisions (stall, skew: a stall on one
// shard can expire deadlines on another via the shared VirtualClock) pin
// num_shards = 1 so the accepted set is schedule-independent on any
// machine; time-independent legs (failure, burst) exercise 4 shards.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/rng.h"
#include "common/vecmath.h"
#include "dispatch_test_util.h"
#include "serving/admission.h"
#include "serving/fault_injection.h"
#include "serving/request_batcher.h"
#include "serving/sharded_server.h"

namespace svt {
namespace {

ServingOptions BaseOptions(int shards, uint64_t seed) {
  ServingOptions o;
  o.num_shards = shards;
  o.seed = seed;
  o.mode = ShardMode::kAutoReset;
  o.svt.epsilon = 1.0;
  o.svt.cutoff = 2;
  o.svt.monotonic = true;
  // Numeric positives make every comparison bitwise on doubles.
  o.svt.numeric_output_fraction = 0.25;
  return o;
}

struct FaultLeg {
  const char* name;
  int num_shards;
  /// Every request's absolute deadline (VirtualClock domain); 0 = none.
  int64_t deadline_nanos;
  FaultInjector::Options faults;  // seed 0 + all-zero probabilities = none
  bool inject = false;            ///< pass an injector at all?
  /// Run the shards on the exponential-noise axis (one-sided ρ, exponential
  /// ν, ρ redrawn after positives): the contract — faults pick the accepted
  /// set, never the noise stream — must hold for one-word-per-variate draws
  /// exactly as for Laplace's two.
  bool exponential_noise = false;
};

std::vector<FaultLeg> MakeLegs() {
  std::vector<FaultLeg> legs;
  legs.push_back({"none", 4, 0, {}, false});
  {
    // Stalls advance the shared VirtualClock past queued deadlines: some
    // requests are accepted, stalled behind, and expire before execution.
    FaultLeg leg{"stall", 1, 50'000, {}, true};
    leg.faults.seed = 101;
    leg.faults.shard_stall_probability = 0.25;
    leg.faults.stall_nanos = 7'000;
    legs.push_back(leg);
  }
  {
    FaultLeg leg{"shard-failure", 4, 0, {}, true};
    leg.faults.seed = 102;
    leg.faults.shard_failure_probability = 0.2;
    legs.push_back(leg);
  }
  {
    FaultLeg leg{"queue-full-burst", 4, 0, {}, true};
    leg.faults.seed = 103;
    leg.faults.submit_shed_probability = 0.15;
    leg.faults.submit_shed_burst = 3;
    legs.push_back(leg);
  }
  {
    // Forward skew expires deadlines early at admission and at drain.
    FaultLeg leg{"clock-skew", 1, 30'000, {}, true};
    leg.faults.seed = 104;
    leg.faults.clock_skew_probability = 0.3;
    leg.faults.clock_skew_nanos = 40'000;
    legs.push_back(leg);
  }
  {
    // Shard failures against exponential-noise shards: same fault shape as
    // "shard-failure", different noise axis.
    FaultLeg leg{"exp-noise-failure", 4, 0, {}, true};
    leg.faults.seed = 106;
    leg.faults.shard_failure_probability = 0.2;
    leg.exponential_noise = true;
    legs.push_back(leg);
  }
  {
    // Everything at once, single shard for schedule independence.
    FaultLeg leg{"combined", 1, 60'000, {}, true};
    leg.faults.seed = 105;
    leg.faults.shard_stall_probability = 0.2;
    leg.faults.stall_nanos = 9'000;
    leg.faults.shard_failure_probability = 0.15;
    leg.faults.submit_shed_probability = 0.1;
    leg.faults.submit_shed_burst = 2;
    leg.faults.clock_skew_probability = 0.2;
    leg.faults.clock_skew_nanos = 25'000;
    legs.push_back(leg);
  }
  return legs;
}

constexpr int kRequests = 48;
constexpr size_t kQueriesPerRequest = 64;
constexpr uint64_t kServerSeed = 7;

ServingOptions LegOptions(const FaultLeg& leg) {
  ServingOptions o = BaseOptions(leg.num_shards, kServerSeed);
  if (leg.exponential_noise) {
    o.svt.rho_kind = NoiseKind::kExponential;
    o.svt.nu_kind = NoiseKind::kExponential;
    o.svt.resample_threshold_noise = true;
  }
  return o;
}

struct Transcript {
  std::vector<RequestOutcome> outcomes;          // per request
  std::vector<std::vector<Response>> responses;  // per request
  ServingStats stats;
  FaultInjector::Counters fault_counters;

  bool operator==(const Transcript& other) const {
    if (outcomes != other.outcomes) return false;
    if (responses != other.responses) return false;
    if (fault_counters.stalls != other.fault_counters.stalls) return false;
    if (fault_counters.failures != other.fault_counters.failures) {
      return false;
    }
    if (fault_counters.submit_sheds != other.fault_counters.submit_sheds) {
      return false;
    }
    return fault_counters.skews == other.fault_counters.skews;
  }
};

std::vector<double> RequestAnswers(int request) {
  Rng gen(1000 + static_cast<uint64_t>(request));
  std::vector<double> answers(kQueriesPerRequest);
  for (size_t i = 0; i < answers.size(); ++i) {
    answers[i] = gen.NextUniform(-30.0, 30.0);
  }
  return answers;
}

/// Runs the leg's fixed submission schedule once: kRequests requests,
/// submitted in order, drained in chunks of 8 with the clock advancing
/// between chunks (so queued deadlines can expire under stalls/skew).
Transcript RunLeg(const FaultLeg& leg) {
  std::optional<FaultInjector> injector;
  if (leg.inject) injector.emplace(leg.faults);
  VirtualClock clock;
  ServingOptions so = LegOptions(leg);
  so.clock = &clock;
  so.fault_injector = leg.inject ? &*injector : nullptr;
  auto server = ShardedSvtServer::Create(so).value();
  RequestBatcher batcher(server.get());

  Transcript t;
  t.outcomes.assign(kRequests, RequestOutcome::kPending);
  t.responses.resize(kRequests);
  // Answers must outlive the drain that executes them (Submit stores a
  // span), so they live outside the loop.
  std::vector<std::vector<double>> answers(kRequests);
  for (int r = 0; r < kRequests; ++r) {
    answers[static_cast<size_t>(r)] = RequestAnswers(r);
    SubmitOptions submit;
    submit.deadline_nanos = leg.deadline_nanos;
    const Result<uint64_t> result = batcher.Submit(
        static_cast<uint64_t>(r), answers[static_cast<size_t>(r)], 0.5,
        &t.responses[static_cast<size_t>(r)], submit,
        &t.outcomes[static_cast<size_t>(r)]);
    if (!result.ok()) {
      // Shed at admission: record the terminal reason in the transcript.
      t.outcomes[static_cast<size_t>(r)] =
          result.status().code() == StatusCode::kDeadlineExceeded
              ? RequestOutcome::kDeadlineExceeded
              : RequestOutcome::kShardFailed;  // kOverloaded burst
    }
    if ((r + 1) % 8 == 0) {
      batcher.Drain();
      clock.Advance(10'000);
    }
  }
  batcher.Drain();
  t.stats = server->TotalStats();
  if (leg.inject) t.fault_counters = injector->counters();
  return t;
}

/// The contract's reference: a fault-free server fed only the requests the
/// faulted run accepted (outcome kOk), in their original order.
std::vector<std::vector<Response>> RunRestrictedReference(
    const FaultLeg& leg, const std::vector<RequestOutcome>& outcomes) {
  auto server = ShardedSvtServer::Create(LegOptions(leg)).value();
  RequestBatcher batcher(server.get());
  std::vector<std::vector<Response>> responses(kRequests);
  std::vector<std::vector<double>> answers(kRequests);
  for (int r = 0; r < kRequests; ++r) {
    if (outcomes[static_cast<size_t>(r)] != RequestOutcome::kOk) continue;
    answers[static_cast<size_t>(r)] = RequestAnswers(r);
    EXPECT_TRUE(batcher
                    .Submit(static_cast<uint64_t>(r),
                            answers[static_cast<size_t>(r)], 0.5,
                            &responses[static_cast<size_t>(r)])
                    .ok());
  }
  batcher.Drain();
  return responses;
}

void CheckLegAtCurrentLevel(const FaultLeg& leg, const Transcript& t) {
  // 1. Run-to-run reproducibility: the same leg replays bitwise, faults
  //    included.
  const Transcript replay = RunLeg(leg);
  EXPECT_TRUE(t == replay) << leg.name << ": leg is not reproducible";

  // 2. Accepted responses == fault-free run restricted to the accepted
  //    set. Faults changed the set, not the noise.
  const std::vector<std::vector<Response>> reference =
      RunRestrictedReference(leg, t.outcomes);
  int accepted = 0;
  for (int r = 0; r < kRequests; ++r) {
    const auto& got = t.responses[static_cast<size_t>(r)];
    if (t.outcomes[static_cast<size_t>(r)] == RequestOutcome::kOk) {
      EXPECT_EQ(got, reference[static_cast<size_t>(r)])
          << leg.name << ": accepted request " << r
          << " diverges from the restricted fault-free run";
      ++accepted;
    } else {
      EXPECT_TRUE(got.empty() ||
                  t.outcomes[static_cast<size_t>(r)] ==
                      RequestOutcome::kBudgetExhausted)
          << leg.name << ": non-accepted request " << r << " has responses";
    }
  }

  // 3. The leg exercised what it claims to exercise.
  if (std::string(leg.name) == "none") {
    EXPECT_EQ(accepted, kRequests);
    EXPECT_EQ(t.stats.shard_failures, 0);
    EXPECT_EQ(t.stats.deadline_misses, 0);
    EXPECT_EQ(t.stats.shed, 0);
  } else {
    EXPECT_LT(accepted, kRequests)
        << leg.name << ": no fault actually bit; leg is vacuous";
    EXPECT_GT(accepted, 0) << leg.name << ": every request faulted";
    const auto& c = t.fault_counters;
    EXPECT_GT(c.stalls + c.failures + c.submit_sheds + c.skews, 0);
  }
}

TEST(ServingFaultMatrixTest, FaultsNeverPerturbAcceptedStreams) {
  ScopedDispatchLevel guard;
  const std::vector<FaultLeg> legs = MakeLegs();
  // Transcripts per leg at the first supported level, to compare across
  // dispatch levels: the accepted set and every response must be
  // level-independent.
  std::vector<std::optional<Transcript>> baseline(legs.size());
  for (vec::DispatchLevel level : vec::kAllDispatchLevels) {
    if (!vec::SetDispatchLevel(level)) {
      continue;  // e.g. AVX-512 on a host without it
    }
    SCOPED_TRACE(std::string("dispatch level ") +
                 vec::DispatchLevelName(level));
    for (size_t i = 0; i < legs.size(); ++i) {
      SCOPED_TRACE(std::string("leg ") + legs[i].name);
      const Transcript t = RunLeg(legs[i]);
      CheckLegAtCurrentLevel(legs[i], t);
      if (!baseline[i].has_value()) {
        baseline[i] = t;
      } else {
        EXPECT_TRUE(t == *baseline[i])
            << legs[i].name << ": transcript differs across dispatch levels";
      }
    }
  }
}

}  // namespace
}  // namespace svt
