// Overload-hardened serving: admission control (bounded queue, kReject /
// kBlock shed policies), per-request deadlines, structured degraded
// outcomes (kBudgetExhausted instead of silent truncation, kShardFailed
// skip-and-fail), the reject-after-shutdown contract, the seeded
// jittered-backoff retry helper, and the robustness counters in
// ServingStats / BatcherStats. Everything time-dependent runs on a
// VirtualClock so overload is an exact, reproducible event.
//
// The fault-matrix determinism suite (every injected fault × every
// dispatch level) lives in serving_fault_matrix_test.cc.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/rng.h"
#include "serving/admission.h"
#include "serving/fault_injection.h"
#include "serving/request_batcher.h"
#include "serving/sharded_server.h"

namespace svt {
namespace {

ServingOptions AutoResetOptions(int shards, uint64_t seed) {
  ServingOptions o;
  o.num_shards = shards;
  o.seed = seed;
  o.mode = ShardMode::kAutoReset;
  o.svt.epsilon = 1.0;
  o.svt.cutoff = 2;
  o.svt.monotonic = true;
  o.svt.numeric_output_fraction = 0.2;
  return o;
}

ServingOptions MeteredOptions(int shards, uint64_t seed) {
  ServingOptions o;
  o.num_shards = shards;
  o.seed = seed;
  o.mode = ShardMode::kBudgetMetered;
  o.session.total_epsilon = 1.0;
  o.session.epsilon_per_round = 0.1;
  o.session.round.cutoff = 2;
  o.session.round.monotonic = true;
  return o;
}

std::vector<double> MakeAnswers(size_t n, uint64_t seed) {
  Rng gen(seed);
  std::vector<double> answers(n);
  for (size_t i = 0; i < n; ++i) answers[i] = gen.NextUniform(-25.0, 25.0);
  return answers;
}

/// Smallest key that ShardOf routes to `shard`.
uint64_t KeyForShard(const ShardedSvtServer& server, int shard) {
  for (uint64_t key = 0;; ++key) {
    if (server.ShardOf(key) == shard) return key;
  }
}

// ---------------------------------------------------------------------------
// Validate() error paths
// ---------------------------------------------------------------------------

TEST(ServingOptionsValidateTest, ErrorPaths) {
  EXPECT_TRUE(AutoResetOptions(4, 1).Validate().ok());

  ServingOptions o = AutoResetOptions(0, 1);
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);

  o = AutoResetOptions(-3, 1);
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);

  o = AutoResetOptions(ServingOptions::kMaxShards + 1, 1);
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(ShardedSvtServer::Create(o).ok());
  o.num_shards = ServingOptions::kMaxShards;  // boundary value is legal
  EXPECT_TRUE(o.Validate().ok());

  o = AutoResetOptions(2, 1);
  o.svt.epsilon = -1.0;
  EXPECT_FALSE(o.Validate().ok());

  o = MeteredOptions(2, 1);
  o.session.epsilon_per_round = 2.0;  // exceeds total
  EXPECT_FALSE(o.Validate().ok());
}

TEST(BatcherOptionsValidateTest, ErrorPaths) {
  RequestBatcher::Options o;
  EXPECT_TRUE(o.Validate().ok());  // defaults: unbounded queue, kReject

  o.max_pending = 8;
  o.auto_drain_pending = 4;
  EXPECT_TRUE(o.Validate().ok());

  // auto_drain threshold above the queue cap can never fire.
  o.auto_drain_pending = 9;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.auto_drain_pending = 8;  // equal is reachable, hence legal
  EXPECT_TRUE(o.Validate().ok());

  // kBlock needs a bounded queue and a positive timeout.
  o = RequestBatcher::Options();
  o.shed_policy = ShedPolicy::kBlock;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.max_pending = 4;
  EXPECT_TRUE(o.Validate().ok());
  o.block_timeout_nanos = 0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.block_timeout_nanos = -5;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(FaultInjectorOptionsValidateTest, ErrorPaths) {
  FaultInjector::Options o;
  EXPECT_TRUE(o.Validate().ok());

  o.shard_stall_probability = 1.5;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.shard_stall_probability = 0.5;
  EXPECT_FALSE(o.Validate().ok());  // stall probability without stall_nanos
  o.stall_nanos = 100;
  EXPECT_TRUE(o.Validate().ok());
  o.stall_nanos = -1;
  EXPECT_FALSE(o.Validate().ok());

  o = FaultInjector::Options();
  o.submit_shed_burst = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = FaultInjector::Options();
  o.clock_skew_probability = 0.1;
  EXPECT_FALSE(o.Validate().ok());  // skew probability without skew_nanos
  o.clock_skew_nanos = 10;
  EXPECT_TRUE(o.Validate().ok());
}

TEST(JitteredBackoffOptionsValidateTest, ErrorPaths) {
  JitteredBackoff::Options o;
  EXPECT_TRUE(o.Validate().ok());
  o.initial_delay_nanos = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = JitteredBackoff::Options();
  o.max_delay_nanos = o.initial_delay_nanos - 1;
  EXPECT_FALSE(o.Validate().ok());
  o = JitteredBackoff::Options();
  o.multiplier = 0.9;
  EXPECT_FALSE(o.Validate().ok());
  o = JitteredBackoff::Options();
  o.jitter = 1.5;
  EXPECT_FALSE(o.Validate().ok());
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(AdmissionTest, RejectPolicyShedsAtCapacityWithoutBlocking) {
  VirtualClock clock;
  ServingOptions so = AutoResetOptions(2, 11);
  so.clock = &clock;
  auto server = ShardedSvtServer::Create(so).value();
  RequestBatcher::Options bo;
  bo.max_pending = 3;
  bo.shed_policy = ShedPolicy::kReject;
  RequestBatcher batcher(server.get(), bo);

  const std::vector<double> answers = MakeAnswers(50, 60);
  std::vector<std::vector<Response>> outs(5);
  for (int r = 0; r < 3; ++r) {
    ASSERT_TRUE(batcher.Submit(static_cast<uint64_t>(r), answers, 0.0,
                               &outs[static_cast<size_t>(r)])
                    .ok());
  }
  // Queue is at capacity: the next submissions shed instantly. With a
  // VirtualClock "instantly" is provable: time cannot pass.
  const int64_t before = clock.NowNanos();
  for (int r = 3; r < 5; ++r) {
    const Result<uint64_t> result = batcher.Submit(
        static_cast<uint64_t>(r), answers, 0.0, &outs[static_cast<size_t>(r)]);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kOverloaded);
    EXPECT_TRUE(outs[static_cast<size_t>(r)].empty());
  }
  EXPECT_EQ(clock.NowNanos(), before);

  const RequestBatcher::BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.submitted, 3);
  EXPECT_EQ(stats.shed_overload, 2);
  EXPECT_EQ(stats.queue_high_water, 3u);
  EXPECT_EQ(server->TotalStats().shed, 2);

  // Draining frees the queue; admission resumes.
  EXPECT_EQ(batcher.Drain(), 3u);
  EXPECT_TRUE(batcher.Submit(7, answers, 0.0, &outs[3]).ok());
  EXPECT_EQ(batcher.Drain(), 1u);
  EXPECT_EQ(outs[3].size(), answers.size());
}

TEST(AdmissionTest, BlockPolicyTimesOutWhenNothingDrains) {
  auto server = ShardedSvtServer::Create(AutoResetOptions(2, 12)).value();
  RequestBatcher::Options bo;
  bo.max_pending = 1;
  bo.shed_policy = ShedPolicy::kBlock;
  bo.block_timeout_nanos = 5'000'000;  // 5 ms real time
  // Buffers before the batcher: request A stays pending until the
  // destructor's final flush, which still reads them (the documented
  // Submit lifetime contract).
  const std::vector<double> answers = MakeAnswers(20, 61);
  std::vector<Response> out_a, out_b;
  RequestBatcher batcher(server.get(), bo);

  ASSERT_TRUE(batcher.Submit(0, answers, 0.0, &out_a).ok());
  // Nothing drains, so the wait must give up with kOverloaded.
  const Result<uint64_t> result = batcher.Submit(1, answers, 0.0, &out_b);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOverloaded);
  const RequestBatcher::BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.block_timeouts, 1);
  EXPECT_EQ(stats.shed_overload, 1);
}

TEST(AdmissionTest, BlockPolicyAdmitsOnceADrainFreesSpace) {
  auto server = ShardedSvtServer::Create(AutoResetOptions(2, 13)).value();
  RequestBatcher::Options bo;
  bo.max_pending = 1;
  bo.shed_policy = ShedPolicy::kBlock;
  bo.block_timeout_nanos = 10'000'000'000;  // 10 s: must not be reached
  const std::vector<double> answers = MakeAnswers(20, 62);
  std::vector<Response> out_a, out_b;
  RequestBatcher batcher(server.get(), bo);

  ASSERT_TRUE(batcher.Submit(0, answers, 0.0, &out_a).ok());
  std::thread drainer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    batcher.Drain();
  });
  // Blocks until the drainer frees the slot, then is admitted.
  const Result<uint64_t> result = batcher.Submit(1, answers, 0.0, &out_b);
  drainer.join();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(batcher.stats().shed_overload, 0);
  batcher.Drain();
  EXPECT_EQ(out_b.size(), answers.size());
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST(DeadlineTest, ExpiredAtSubmitIsRejectedNotEnqueued) {
  VirtualClock clock(1'000);
  ServingOptions so = AutoResetOptions(2, 14);
  so.clock = &clock;
  auto server = ShardedSvtServer::Create(so).value();
  RequestBatcher batcher(server.get());

  const std::vector<double> answers = MakeAnswers(20, 63);
  std::vector<Response> out;
  SubmitOptions submit;
  submit.deadline_nanos = 500;  // already in the past
  const Result<uint64_t> result =
      batcher.Submit(0, answers, 0.0, &out, submit);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(batcher.pending(), 0u);
  EXPECT_EQ(batcher.stats().shed_deadline, 1);
  EXPECT_EQ(server->TotalStats().deadline_misses, 1);
}

TEST(DeadlineTest, ExpiredInQueueIsSkippedAndStreamsAreUnperturbed) {
  // Request B expires while queued; it must never execute, and the
  // responses of A and C must equal a fault-free run of just {A, C} —
  // the deadline changed the accepted set, not the noise.
  const std::vector<double> answers = MakeAnswers(300, 64);
  const uint64_t key = 0;  // everything on one shard

  VirtualClock clock;
  ServingOptions so = AutoResetOptions(2, 15);
  so.clock = &clock;
  auto server = ShardedSvtServer::Create(so).value();
  RequestBatcher batcher(server.get());

  std::vector<Response> out_a, out_b, out_c;
  RequestOutcome oc_a = RequestOutcome::kPending;
  RequestOutcome oc_b = RequestOutcome::kPending;
  RequestOutcome oc_c = RequestOutcome::kPending;
  SubmitOptions no_deadline;
  SubmitOptions tight;
  tight.deadline_nanos = 100;
  ASSERT_TRUE(
      batcher.Submit(key, answers, 0.5, &out_a, no_deadline, &oc_a).ok());
  ASSERT_TRUE(batcher.Submit(key, answers, 0.5, &out_b, tight, &oc_b).ok());
  ASSERT_TRUE(
      batcher.Submit(key, answers, 0.5, &out_c, no_deadline, &oc_c).ok());
  clock.Advance(200);  // B's deadline passes while queued
  EXPECT_EQ(batcher.Drain(), 3u);

  EXPECT_EQ(oc_a, RequestOutcome::kOk);
  EXPECT_EQ(oc_b, RequestOutcome::kDeadlineExceeded);
  EXPECT_EQ(oc_c, RequestOutcome::kOk);
  EXPECT_TRUE(out_b.empty());
  EXPECT_EQ(server->TotalStats().deadline_misses, 1);

  // Fault-free reference restricted to the accepted set {A, C}.
  auto reference = ShardedSvtServer::Create(AutoResetOptions(2, 15)).value();
  RequestBatcher ref_batcher(reference.get());
  std::vector<Response> ref_a, ref_c;
  ASSERT_TRUE(ref_batcher.Submit(key, answers, 0.5, &ref_a).ok());
  ASSERT_TRUE(ref_batcher.Submit(key, answers, 0.5, &ref_c).ok());
  ref_batcher.Drain();
  EXPECT_EQ(out_a, ref_a);
  EXPECT_EQ(out_c, ref_c);
}

// ---------------------------------------------------------------------------
// Budget exhaustion: structured outcome, not silent truncation
// ---------------------------------------------------------------------------

TEST(BudgetOutcomeTest, ExhaustedMeteredShardReportsBudgetExhausted) {
  auto server = ShardedSvtServer::Create(MeteredOptions(2, 16)).value();
  RequestBatcher batcher(server.get());
  const uint64_t key0 = KeyForShard(*server, 0);
  const uint64_t key1 = KeyForShard(*server, 1);

  // All-hot answers: every query is a positive, so shard 0's budget
  // (cutoff 2 × 10 rounds of 0.1 in 1.0 = 20 positives) exhausts inside
  // the first request.
  const std::vector<double> hot(30, 1e9);
  std::vector<Response> out_a, out_b, out_c;
  RequestOutcome oc_a = RequestOutcome::kPending;
  RequestOutcome oc_b = RequestOutcome::kPending;
  RequestOutcome oc_c = RequestOutcome::kPending;
  ASSERT_TRUE(batcher.Submit(key0, hot, 0.0, &out_a, {}, &oc_a).ok());
  ASSERT_TRUE(batcher.Submit(key0, hot, 0.0, &out_b, {}, &oc_b).ok());
  // Shard 1's request rides in the same drain: only the exhausted shard's
  // requests degrade, never the whole drain.
  ASSERT_TRUE(batcher.Submit(key1, hot, 0.0, &out_c, {}, &oc_c).ok());
  EXPECT_EQ(batcher.Drain(), 3u);

  EXPECT_EQ(oc_a, RequestOutcome::kBudgetExhausted);
  EXPECT_EQ(out_a.size(), 20u);  // the funded prefix, not silently absent
  EXPECT_EQ(oc_b, RequestOutcome::kBudgetExhausted);
  EXPECT_TRUE(out_b.empty());
  EXPECT_EQ(oc_c, RequestOutcome::kBudgetExhausted);
  EXPECT_EQ(out_c.size(), 20u);  // shard 1 spent its own budget

  EXPECT_TRUE(server->ShardExhausted(0));
  EXPECT_EQ(server->StatsForShard(0).budget_exhausted, 2);
  EXPECT_EQ(server->TotalStats().budget_exhausted, 3);
}

TEST(BudgetOutcomeTest, DirectExecuteReportsOutcomeToo) {
  auto server = ShardedSvtServer::Create(MeteredOptions(1, 17)).value();
  const std::vector<double> hot(25, 1e9);
  const std::vector<double> cold(25, -1e9);
  std::vector<Response> out;
  RequestOutcome outcome = RequestOutcome::kPending;
  server->ExecuteOnShard(0, cold, 0.0, &out, &outcome);
  EXPECT_EQ(outcome, RequestOutcome::kOk);  // negatives are free
  out.clear();
  server->ExecuteOnShard(0, hot, 0.0, &out, &outcome);
  EXPECT_EQ(outcome, RequestOutcome::kBudgetExhausted);
  EXPECT_EQ(out.size(), 20u);
}

// ---------------------------------------------------------------------------
// Shutdown contract
// ---------------------------------------------------------------------------

TEST(ShutdownTest, SubmitAfterShutdownIsRejectedAndPendingStillDrains) {
  auto server = ShardedSvtServer::Create(AutoResetOptions(2, 18)).value();
  const std::vector<double> answers = MakeAnswers(40, 65);
  std::vector<Response> out_before, out_after;
  {
    RequestBatcher batcher(server.get());
    ASSERT_TRUE(batcher.Submit(0, answers, 0.0, &out_before).ok());
    batcher.Shutdown();
    const Result<uint64_t> rejected =
        batcher.Submit(1, answers, 0.0, &out_after);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(batcher.stats().shed_shutdown, 1);
    // Destructor still flushes what was admitted before the mark.
  }
  EXPECT_EQ(out_before.size(), answers.size());
  EXPECT_TRUE(out_after.empty());
}

TEST(ShutdownTest, SubmittersRacingShutdownEitherDeliverOrRejectCleanly) {
  // Hammer Submit from several threads while the main thread flips the
  // shutdown mark: every accepted request must be delivered by the final
  // flush, every rejection must be the named FailedPrecondition, and
  // under the TSan CI job the race must be clean.
  auto server = ShardedSvtServer::Create(AutoResetOptions(2, 19)).value();
  const std::vector<double> answers = MakeAnswers(60, 66);
  const int kThreads = 3;
  const int kPerThread = 200;
  std::vector<std::vector<std::vector<Response>>> outs(
      static_cast<size_t>(kThreads));
  std::vector<std::vector<bool>> accepted(static_cast<size_t>(kThreads));
  auto batcher = std::make_unique<RequestBatcher>(server.get());

  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    outs[static_cast<size_t>(t)].resize(kPerThread);
    accepted[static_cast<size_t>(t)].resize(kPerThread, false);
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const Result<uint64_t> result = batcher->Submit(
            static_cast<uint64_t>(t * kPerThread + i), answers, 0.0,
            &outs[static_cast<size_t>(t)][static_cast<size_t>(i)]);
        if (result.ok()) {
          accepted[static_cast<size_t>(t)][static_cast<size_t>(i)] = true;
        } else {
          ASSERT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  batcher->Shutdown();
  for (std::thread& t : submitters) t.join();
  batcher.reset();  // final flush

  int64_t delivered = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const auto& out = outs[static_cast<size_t>(t)][static_cast<size_t>(i)];
      if (accepted[static_cast<size_t>(t)][static_cast<size_t>(i)]) {
        EXPECT_EQ(out.size(), answers.size());
        ++delivered;
      } else {
        EXPECT_TRUE(out.empty());
      }
    }
  }
  EXPECT_EQ(server->TotalStats().queries,
            delivered * static_cast<int64_t>(answers.size()));
}

// ---------------------------------------------------------------------------
// Retry with jittered backoff
// ---------------------------------------------------------------------------

TEST(RetryTest, SubmitWithRetrySucceedsAfterDrainFreesSpace) {
  VirtualClock clock;
  ServingOptions so = AutoResetOptions(2, 20);
  so.clock = &clock;
  auto server = ShardedSvtServer::Create(so).value();
  RequestBatcher::Options bo;
  bo.max_pending = 1;
  RequestBatcher batcher(server.get(), bo);

  const std::vector<double> answers = MakeAnswers(30, 67);
  std::vector<Response> out_a, out_b;
  ASSERT_TRUE(batcher.Submit(0, answers, 0.0, &out_a).ok());

  Rng rng(41);
  JitteredBackoff backoff(JitteredBackoff::Options(), &rng);
  RequestOutcome outcome = RequestOutcome::kPending;
  const Result<uint64_t> result = batcher.SubmitWithRetry(
      1, answers, 0.0, &out_b, SubmitOptions(), &outcome, 3, &backoff);
  ASSERT_TRUE(result.ok());  // first attempt shed, retry drained + admitted
  EXPECT_EQ(batcher.stats().retries, 1);
  EXPECT_EQ(batcher.stats().shed_overload, 1);
  EXPECT_EQ(server->TotalStats().retries, 1);
  EXPECT_GT(clock.NowNanos(), 0);  // the backoff sleep advanced the clock
  batcher.Drain();
  EXPECT_EQ(out_b.size(), answers.size());
  EXPECT_EQ(outcome, RequestOutcome::kOk);
}

TEST(RetryTest, ExhaustedAttemptsReturnOverloaded) {
  // An injected queue-full burst on every admission attempt: retries can
  // never win, so the helper must give up after exactly max_attempts.
  FaultInjector::Options fo;
  fo.seed = 9;
  fo.submit_shed_probability = 1.0;
  FaultInjector injector(fo);
  VirtualClock clock;
  ServingOptions so = AutoResetOptions(1, 21);
  so.clock = &clock;
  so.fault_injector = &injector;
  auto server = ShardedSvtServer::Create(so).value();
  RequestBatcher batcher(server.get());

  const std::vector<double> answers = MakeAnswers(10, 68);
  std::vector<Response> out;
  Rng rng(42);
  JitteredBackoff backoff(JitteredBackoff::Options(), &rng);
  const Result<uint64_t> result = batcher.SubmitWithRetry(
      0, answers, 0.0, &out, SubmitOptions(), nullptr, 3, &backoff);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(batcher.stats().retries, 2);  // 3 attempts = 2 retries
  EXPECT_EQ(batcher.stats().shed_overload, 3);
  EXPECT_EQ(injector.counters().submit_sheds, 3);
  EXPECT_TRUE(out.empty());
}

TEST(JitteredBackoffTest, DeterministicGrowingAndBounded) {
  JitteredBackoff::Options o;
  o.initial_delay_nanos = 1'000;
  o.max_delay_nanos = 8'000;
  o.multiplier = 2.0;
  o.jitter = 0.5;

  Rng rng_a(77), rng_b(77);
  JitteredBackoff a(o, &rng_a), b(o, &rng_b);
  for (int i = 0; i < 20; ++i) {
    const int64_t delay = a.NextDelayNanos();
    EXPECT_EQ(delay, b.NextDelayNanos()) << "attempt " << i;
    // Envelope: [cap * (1 - jitter), cap] for cap = min(1000 * 2^i, 8000).
    const double cap =
        std::min(1000.0 * std::pow(2.0, static_cast<double>(i)), 8000.0);
    EXPECT_LE(delay, static_cast<int64_t>(cap));
    EXPECT_GE(delay, static_cast<int64_t>(cap * 0.5) - 1);
  }
  EXPECT_EQ(a.attempts(), 20);
  a.Reset();
  EXPECT_EQ(a.attempts(), 0);
  // After Reset the schedule restarts at the initial envelope.
  EXPECT_LE(a.NextDelayNanos(), 1'000);

  // jitter == 0 is exact and consumes no randomness differently per run.
  JitteredBackoff::Options exact = o;
  exact.jitter = 0.0;
  Rng rng_c(1);
  JitteredBackoff c(exact, &rng_c);
  EXPECT_EQ(c.NextDelayNanos(), 1'000);
  EXPECT_EQ(c.NextDelayNanos(), 2'000);
  EXPECT_EQ(c.NextDelayNanos(), 4'000);
  EXPECT_EQ(c.NextDelayNanos(), 8'000);
  EXPECT_EQ(c.NextDelayNanos(), 8'000);  // capped
}

// ---------------------------------------------------------------------------
// Fault injector decision purity + stall observability
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, DecisionsArePureFunctionsOfCoordinates) {
  FaultInjector::Options o;
  o.seed = 5;
  o.shard_stall_probability = 0.3;
  o.stall_nanos = 1'000;
  o.shard_failure_probability = 0.3;
  o.submit_shed_probability = 0.25;
  o.submit_shed_burst = 4;
  FaultInjector a(o), b(o);
  int fired = 0;
  for (int shard = 0; shard < 4; ++shard) {
    for (uint64_t attempt = 0; attempt < 200; ++attempt) {
      const FaultInjector::ShardFault fa = a.OnShardAttempt(shard, attempt);
      const FaultInjector::ShardFault fb = b.OnShardAttempt(shard, attempt);
      EXPECT_EQ(fa.stall_nanos, fb.stall_nanos);
      EXPECT_EQ(fa.fail, fb.fail);
      fired += (fa.fail || fa.stall_nanos > 0) ? 1 : 0;
    }
  }
  EXPECT_GT(fired, 0);  // the probabilities actually bite
  // Burst semantics: decisions are constant within a burst window.
  for (uint64_t window = 0; window < 50; ++window) {
    const bool first = a.OnSubmitAttempt(window * 4);
    for (uint64_t i = 1; i < 4; ++i) {
      EXPECT_EQ(a.OnSubmitAttempt(window * 4 + i), first);
    }
  }
}

TEST(FaultInjectorTest, DisabledProbabilitiesNeverFire) {
  FaultInjector injector{FaultInjector::Options{}};
  for (uint64_t attempt = 0; attempt < 1000; ++attempt) {
    const FaultInjector::ShardFault f = injector.OnShardAttempt(0, attempt);
    EXPECT_EQ(f.stall_nanos, 0);
    EXPECT_FALSE(f.fail);
    EXPECT_FALSE(injector.OnSubmitAttempt(attempt));
    EXPECT_EQ(injector.SkewNanos(attempt), 0);
  }
}

TEST(FaultInjectorTest, StallAdvancesVirtualClockAndIsCounted) {
  FaultInjector::Options fo;
  fo.seed = 6;
  fo.shard_stall_probability = 1.0;  // every attempt stalls
  fo.stall_nanos = 500;
  FaultInjector injector(fo);
  VirtualClock clock;
  ServingOptions so = AutoResetOptions(1, 22);
  so.clock = &clock;
  so.fault_injector = &injector;
  auto server = ShardedSvtServer::Create(so).value();
  const std::vector<double> answers = MakeAnswers(10, 69);
  std::vector<Response> out;
  server->ExecuteOnShard(0, answers, 0.0, &out);
  server->ExecuteOnShard(0, answers, 0.0, &out);
  EXPECT_EQ(clock.NowNanos(), 1'000);  // two deterministic 500ns stalls
  EXPECT_EQ(server->StatsForShard(0).stall_nanos, 1'000);
  EXPECT_EQ(injector.counters().stalls, 2);
  EXPECT_EQ(out.size(), 2 * answers.size());  // stalls never drop queries
}

// ---------------------------------------------------------------------------
// Latency observability
// ---------------------------------------------------------------------------

TEST(LatencyStatsTest, ExecNanosTrackTheInjectedClock) {
  // A clock that jumps a fixed amount per read gives exact expectations:
  // ExecuteLocked reads twice (start/end), so each request observes one
  // jump of execution latency.
  class SteppingClock : public Clock {
   public:
    int64_t NowNanos() override { return now_ += 10; }
    void SleepFor(int64_t nanos) override { now_ += nanos; }

   private:
    int64_t now_ = 0;
  };
  SteppingClock clock;
  ServingOptions so = AutoResetOptions(1, 23);
  so.clock = &clock;
  auto server = ShardedSvtServer::Create(so).value();
  const std::vector<double> answers = MakeAnswers(10, 70);
  std::vector<Response> out;
  server->ExecuteOnShard(0, answers, 0.0, &out);
  server->ExecuteOnShard(0, answers, 0.0, &out);
  const ServingStats stats = server->StatsForShard(0);
  EXPECT_EQ(stats.exec_nanos, 20);  // two requests × one 10ns step each
  EXPECT_EQ(stats.exec_nanos_max, 10);
}

TEST(LatencyStatsTest, HistogramBucketsAndConservativeQuantiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.PercentileUpperNanos(0.5), 0);  // empty
  // Values across bucket boundaries: 0 (bucket 0), 1, 100, 800, 4100.
  const int64_t values[] = {0, 1, 100, 800, 4100};
  for (int64_t v : values) h.Add(v);
  h.Add(-7);  // skewed-clock negative clamps into bucket 0
  EXPECT_EQ(h.count(), 6);
  // Upper-edge quantiles bound the true nearest-rank quantile from above:
  // rank ceil(0.5*6)=3 → value 1 (after the two bucket-0 entries), upper
  // edge of bucket [1, 1] is 1.
  EXPECT_EQ(h.PercentileUpperNanos(0.5), 1);
  // rank ceil(0.99*6)=6 → value 4100, bucket [4096, 8191].
  EXPECT_EQ(h.PercentileUpperNanos(0.99), 8191);
  EXPECT_EQ(h.PercentileUpperNanos(0.0), 0);  // rank clamps to 1 → value 0
  // Merge is a plain counter sum.
  LatencyHistogram other;
  other.Add(4100);
  other.Merge(h);
  EXPECT_EQ(other.count(), 7);
  EXPECT_EQ(other.PercentileUpperNanos(1.0), 8191);
}

TEST(LatencyStatsTest, ServingPercentilesAreDeterministicOnInjectedClock) {
  // A scripted clock hands out exact start/end pairs per request, so the
  // per-shard p50/p99 are a pure function of the request sequence — two
  // identically-driven servers report identical percentiles.
  class ScriptedClock : public Clock {
   public:
    int64_t NowNanos() override {
      const int64_t v = script_[std::min(i_, script_.size() - 1)];
      ++i_;
      return v;
    }
    void SleepFor(int64_t /*nanos*/) override {}

   private:
    // (start, end) per request: durations 100, 100, 100, 800, 64000.
    std::vector<int64_t> script_ = {0,    100,   200,  300,  400, 500,
                                    1000, 1800,  2000, 66000};
    size_t i_ = 0;
  };
  ScriptedClock clock_a, clock_b;
  const std::vector<double> answers = MakeAnswers(10, 71);
  auto run = [&](Clock* clock) {
    ServingOptions so = AutoResetOptions(1, 24);
    so.clock = clock;
    auto server = ShardedSvtServer::Create(so).value();
    std::vector<Response> out;
    for (int i = 0; i < 5; ++i) {
      server->ExecuteOnShard(0, answers, 0.0, &out);
    }
    return server->TotalStats();
  };
  const ServingStats a = run(&clock_a);
  const ServingStats b = run(&clock_b);
  EXPECT_EQ(a.exec_hist.count(), 5);
  // Three 100ns requests put the median in [64, 127]; the 64000ns tail
  // lands p99 in [32768, 65535]. Upper edges are what's reported.
  EXPECT_EQ(a.exec_p50_nanos(), 127);
  EXPECT_EQ(a.exec_p99_nanos(), 65535);
  EXPECT_EQ(b.exec_p50_nanos(), a.exec_p50_nanos());
  EXPECT_EQ(b.exec_p99_nanos(), a.exec_p99_nanos());
  // The percentiles never understate: max duration <= p100 upper edge.
  EXPECT_GE(a.exec_hist.PercentileUpperNanos(1.0), a.exec_nanos_max);
}

}  // namespace
}  // namespace svt
