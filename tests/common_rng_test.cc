#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace svt {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 1234;
  uint64_t s2 = 1234;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64Next(s1), SplitMix64Next(s2));
  }
}

TEST(SplitMix64Test, DistinctSeedsDiverge) {
  uint64_t a = 0;
  uint64_t b = 1;
  EXPECT_NE(SplitMix64Next(a), SplitMix64Next(b));
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(7);
  Rng b(8);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, LowEntropySeedsStillDiverge) {
  // SplitMix64 seeding should separate seeds 0,1,2 thoroughly.
  Rng r0(0), r1(1), r2(2);
  EXPECT_NE(r0.NextUint64(), r1.NextUint64());
  EXPECT_NE(r1.NextUint64(), r2.NextUint64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.NextDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoublePositiveNeverZero) {
  Rng rng(99);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.NextDoublePositive();
    ASSERT_GT(u, 0.0);
    ASSERT_LE(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  // stderr of the mean is ~1/sqrt(12n) ≈ 0.00065; 5 sigma.
  EXPECT_NEAR(sum / n, 0.5, 0.0033);
}

TEST(RngTest, NextBoundedIsInRange) {
  Rng rng(11);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(21);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(bound)];
  for (uint64_t k = 0; k < bound; ++k) {
    EXPECT_NEAR(counts[k], n / 10.0, 5.0 * std::sqrt(n * 0.1 * 0.9));
  }
}

TEST(RngTest, NextUniformRespectsRange) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextUniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Streams should not be identical.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, RepeatedForksDiffer) {
  Rng parent(37);
  Rng c1 = parent.Fork();
  Rng c2 = parent.Fork();
  EXPECT_NE(c1.NextUint64(), c2.NextUint64());
}

TEST(RngTest, NestedForksAreWellSeparated) {
  // Regression for the fork-tree pattern of eval/experiment.cc (fork per
  // run, draws, then fork per method): with jump-based forking, run r's
  // method m and run r+1's method m-1 land on the same stream region when
  // runs consume equal draw counts before forking. Key-splitting must
  // give every (run, method) leaf its own stream.
  Rng master(83);
  std::vector<std::vector<uint64_t>> streams;
  for (int run = 0; run < 3; ++run) {
    Rng run_rng = master.Fork();
    run_rng.NextUint64();  // equal pre-fork consumption in every run
    for (int method = 0; method < 3; ++method) {
      Rng method_rng = run_rng.Fork();
      std::vector<uint64_t> s(32);
      method_rng.FillUint64(s);
      streams.push_back(std::move(s));
    }
  }
  for (size_t i = 0; i < streams.size(); ++i) {
    for (size_t j = i + 1; j < streams.size(); ++j) {
      EXPECT_NE(streams[i], streams[j]) << "streams " << i << " and " << j;
    }
  }
}

TEST(RngTest, ConsecutiveForksAreNotShiftedCopies) {
  // Regression: long-jumping the child instead of the parent makes the
  // children of consecutive forks one-step-shifted copies of one stream
  // (LongJump commutes with the state transition), which silently
  // duplicates trials across parallel Monte-Carlo workers.
  Rng parent(71);
  Rng c1 = parent.Fork();
  Rng c2 = parent.Fork();
  c1.NextUint64();  // align c1 one step ahead
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.NextUint64() == c2.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsDeterministicGivenSeed) {
  Rng p1(41), p2(41);
  Rng c1 = p1.Fork();
  Rng c2 = p2.Fork();
  for (int i = 0; i < 100; ++i) ASSERT_EQ(c1.NextUint64(), c2.NextUint64());
}

TEST(RngTest, ShuffleIndicesIsPermutation) {
  Rng rng(43);
  std::vector<uint32_t> idx;
  rng.ShuffleIndices(100, &idx);
  ASSERT_EQ(idx.size(), 100u);
  std::set<uint32_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(47);
  std::vector<int> v = {1, 2, 2, 3, 3, 3, 4};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(53);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> before = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, before);  // probability 1/50! of spurious failure
}

TEST(RngTest, StateRoundTrip) {
  // Odd draw counts leave the generator mid-phase (the next output is not
  // lane 0's); the snapshot must capture that too.
  for (int pre : {0, 1, 2, 3, 7}) {
    Rng a(61);
    for (int i = 0; i < pre; ++i) a.NextUint64();
    Rng b(a.state());
    for (int i = 0; i < 100; ++i) ASSERT_EQ(a.NextUint64(), b.NextUint64());
    std::vector<uint64_t> fa(37), fb(37);
    a.FillUint64(fa);
    b.FillUint64(fb);
    ASSERT_EQ(fa, fb) << "pre=" << pre;
  }
}

TEST(RngDeathTest, NextBoundedZeroAborts) {
  // bound == 0 would be a division by zero in the rejection threshold
  // ((-bound) % bound); the guard must fail loudly instead of SIGFPE.
  Rng rng(1);
  EXPECT_DEATH(rng.NextBounded(0), "bound > 0");
}

// Sanity: equidistribution of high/low bits (xoshiro256++ is known-good;
// this guards against transcription errors in the rotation constants).
TEST(RngTest, BitBalance) {
  Rng rng(67);
  int ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    ones += __builtin_popcountll(rng.NextUint64());
  }
  const double mean_ones = ones / static_cast<double>(n);
  EXPECT_NEAR(mean_ones, 32.0, 0.5);
}

}  // namespace
}  // namespace svt
