#include "core/exponential_mechanism.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace svt {
namespace {

TEST(EmOptionsTest, Validation) {
  EmOptions o;
  o.num_selections = 3;
  EXPECT_TRUE(o.Validate(10).ok());
  EXPECT_FALSE(o.Validate(2).ok());  // c > candidates
  o.epsilon = 0.0;
  EXPECT_FALSE(o.Validate(10).ok());
  o = EmOptions{};
  o.sensitivity = -1.0;
  EXPECT_FALSE(o.Validate(10).ok());
  o = EmOptions{};
  o.num_selections = 0;
  EXPECT_FALSE(o.Validate(10).ok());
}

TEST(SelectOneTest, RejectsEmptyScores) {
  Rng rng(1);
  EXPECT_FALSE(
      ExponentialMechanism::SelectOne({}, 1.0, 1.0, false, rng).ok());
}

TEST(SelectOneTest, SingleCandidateAlwaysSelected) {
  Rng rng(2);
  const std::vector<double> scores = {3.0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(
        ExponentialMechanism::SelectOne(scores, 1.0, 1.0, false, rng).value(),
        0u);
  }
}

TEST(SelectOneTest, MatchesSoftmaxFrequencies) {
  Rng rng(3);
  const std::vector<double> scores = {0.0, 1.0, 2.0};
  const double epsilon = 2.0;  // coef = 1 (general case)
  // P(i) ∝ exp(eps*q_i/2) = exp(q_i).
  std::vector<double> expect(3);
  double z = 0.0;
  for (int i = 0; i < 3; ++i) z += std::exp(scores[i]);
  for (int i = 0; i < 3; ++i) expect[i] = std::exp(scores[i]) / z;

  std::vector<int> counts(3, 0);
  const int n = 150000;
  for (int i = 0; i < n; ++i) {
    ++counts[ExponentialMechanism::SelectOne(scores, epsilon, 1.0, false, rng)
                  .value()];
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), expect[i], 0.006)
        << "i=" << i;
  }
}

TEST(SelectOneTest, MonotonicDoublesExponent) {
  Rng rng(4);
  const std::vector<double> scores = {0.0, 1.0};
  const double epsilon = 1.0;
  // Monotonic: P(1)/P(0) = exp(1.0); general: exp(0.5).
  int mono_hits = 0, gen_hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    mono_hits +=
        ExponentialMechanism::SelectOne(scores, epsilon, 1.0, true, rng)
                    .value() == 1
            ? 1
            : 0;
    gen_hits +=
        ExponentialMechanism::SelectOne(scores, epsilon, 1.0, false, rng)
                    .value() == 1
            ? 1
            : 0;
  }
  const double p_mono = std::exp(1.0) / (1.0 + std::exp(1.0));
  const double p_gen = std::exp(0.5) / (1.0 + std::exp(0.5));
  EXPECT_NEAR(mono_hits / static_cast<double>(n), p_mono, 0.006);
  EXPECT_NEAR(gen_hits / static_cast<double>(n), p_gen, 0.006);
}

TEST(SelectOneTest, InsensitiveToScoreShift) {
  // EM probabilities depend on score differences only; huge absolute scores
  // must not overflow (log-space implementation).
  Rng rng(5);
  const std::vector<double> scores = {1e7, 1e7 + 1.0};
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    hits += ExponentialMechanism::SelectOne(scores, 2.0, 1.0, false, rng)
                    .value() == 1
                ? 1
                : 0;
  }
  const double expect = std::exp(1.0) / (1.0 + std::exp(1.0));
  EXPECT_NEAR(hits / static_cast<double>(n), expect, 0.01);
}

TEST(TopCTest, ReturnsExactlyCDistinctIndices) {
  Rng rng(6);
  std::vector<double> scores(100);
  for (int i = 0; i < 100; ++i) scores[i] = i;
  EmOptions o;
  o.epsilon = 1.0;
  o.num_selections = 10;
  const auto selected = ExponentialMechanism::SelectTopC(scores, o, rng).value();
  EXPECT_EQ(selected.size(), 10u);
  std::set<size_t> unique(selected.begin(), selected.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(TopCTest, SequentialReturnsExactlyCDistinctIndices) {
  Rng rng(7);
  std::vector<double> scores(50);
  for (int i = 0; i < 50; ++i) scores[i] = i * 0.5;
  EmOptions o;
  o.epsilon = 1.0;
  o.num_selections = 7;
  const auto selected =
      ExponentialMechanism::SelectTopCSequential(scores, o, rng).value();
  EXPECT_EQ(selected.size(), 7u);
  std::set<size_t> unique(selected.begin(), selected.end());
  EXPECT_EQ(unique.size(), 7u);
}

TEST(TopCTest, HighEpsilonFindsTrueTop) {
  Rng rng(8);
  std::vector<double> scores = {5.0, 100.0, 3.0, 99.0, 1.0};
  EmOptions o;
  o.epsilon = 1000.0;  // essentially non-private: should pick argmaxes
  o.num_selections = 2;
  for (int t = 0; t < 20; ++t) {
    const auto sel = ExponentialMechanism::SelectTopC(scores, o, rng).value();
    const std::set<size_t> s(sel.begin(), sel.end());
    EXPECT_TRUE(s.count(1) == 1 && s.count(3) == 1);
  }
}

TEST(TopCTest, SelectsAllWhenCEqualsN) {
  Rng rng(9);
  const std::vector<double> scores = {1.0, 2.0, 3.0};
  EmOptions o;
  o.num_selections = 3;
  const auto sel = ExponentialMechanism::SelectTopC(scores, o, rng).value();
  std::set<size_t> s(sel.begin(), sel.end());
  EXPECT_EQ(s.size(), 3u);
}

// The central equivalence property: Gumbel-top-c and the literal
// c-round sequential EM draw from the same distribution. Compare the
// frequency of every possible selected *set* on a small instance.
TEST(TopCTest, GumbelMatchesSequentialDistribution) {
  const std::vector<double> scores = {0.0, 0.7, 1.5, 2.2};
  EmOptions o;
  o.epsilon = 2.0;
  o.num_selections = 2;

  const int n = 60000;
  std::map<std::set<size_t>, int> gumbel_counts, seq_counts;
  Rng rng_g(10), rng_s(11);
  for (int i = 0; i < n; ++i) {
    const auto g = ExponentialMechanism::SelectTopC(scores, o, rng_g).value();
    const auto s =
        ExponentialMechanism::SelectTopCSequential(scores, o, rng_s).value();
    ++gumbel_counts[std::set<size_t>(g.begin(), g.end())];
    ++seq_counts[std::set<size_t>(s.begin(), s.end())];
  }
  // All 6 pairs should occur; compare frequencies within 4 sigma.
  for (const auto& [set, count] : seq_counts) {
    const double p_seq = count / static_cast<double>(n);
    const double p_gum = gumbel_counts[set] / static_cast<double>(n);
    const double sigma = std::sqrt(p_seq * (1 - p_seq) / n) * 2.0;
    EXPECT_NEAR(p_gum, p_seq, 4.0 * sigma + 0.004);
  }
}

// Order statistics equivalence: the *first* selection of the sequential
// method and the argmax of the Gumbel keys have identical distribution.
TEST(TopCTest, FirstPickMatchesSelectOne) {
  const std::vector<double> scores = {0.0, 1.0, 2.0};
  EmOptions o;
  o.epsilon = 3.0;
  o.num_selections = 1;
  Rng rng_a(12), rng_b(13);
  std::vector<int> counts_a(3, 0), counts_b(3, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) {
    ++counts_a[ExponentialMechanism::SelectTopC(scores, o, rng_a).value()[0]];
    ++counts_b[ExponentialMechanism::SelectOne(scores, o.epsilon, 1.0, false,
                                               rng_b)
                   .value()];
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(counts_a[i] / static_cast<double>(n),
                counts_b[i] / static_cast<double>(n), 0.01);
  }
}

TEST(TopCTest, TiedScoresUniform) {
  Rng rng(14);
  const std::vector<double> scores = {5.0, 5.0, 5.0, 5.0};
  EmOptions o;
  o.num_selections = 1;
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[ExponentialMechanism::SelectTopC(scores, o, rng).value()[0]];
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), 0.25, 0.01);
  }
}

class EmScaleSweep : public ::testing::TestWithParam<int> {};

// Property: selection quality improves with epsilon (SER-style check).
TEST_P(EmScaleSweep, MoreBudgetNeverHurtsMuch) {
  const int c = GetParam();
  std::vector<double> scores(200);
  for (int i = 0; i < 200; ++i) scores[i] = 200.0 - i;

  const auto top_mass = [&](double epsilon, uint64_t seed) {
    Rng rng(seed);
    EmOptions o;
    o.epsilon = epsilon;
    o.num_selections = c;
    double mass = 0.0;
    const int reps = 300;
    for (int r = 0; r < reps; ++r) {
      const std::vector<size_t> picked =
          ExponentialMechanism::SelectTopC(scores, o, rng).value();
      for (size_t idx : picked) mass += scores[idx];
    }
    return mass / reps;
  };

  const double low = top_mass(0.01, 15);
  const double high = top_mass(10.0, 16);
  EXPECT_GT(high, low);
}

INSTANTIATE_TEST_SUITE_P(Cs, EmScaleSweep, ::testing::Values(1, 5, 20));

}  // namespace
}  // namespace svt
