#include "eval/metrics.h"

#include <vector>

#include <gtest/gtest.h>

namespace svt {
namespace {

TEST(FnrTest, PerfectSelectionIsZero) {
  const std::vector<double> scores = {10.0, 8.0, 6.0, 4.0, 2.0};
  const std::vector<size_t> selected = {0, 1, 2};
  EXPECT_DOUBLE_EQ(FalseNegativeRate(selected, scores, 3), 0.0);
}

TEST(FnrTest, EmptySelectionIsOne) {
  const std::vector<double> scores = {10.0, 8.0, 6.0};
  EXPECT_DOUBLE_EQ(FalseNegativeRate({}, scores, 2), 1.0);
}

TEST(FnrTest, HalfMissed) {
  const std::vector<double> scores = {10.0, 8.0, 6.0, 4.0};
  const std::vector<size_t> selected = {0, 3};  // hit 10, miss 8
  EXPECT_DOUBLE_EQ(FalseNegativeRate(selected, scores, 2), 0.5);
}

TEST(FnrTest, OrderOfSelectionIrrelevant) {
  const std::vector<double> scores = {10.0, 8.0, 6.0, 4.0};
  EXPECT_DOUBLE_EQ(
      FalseNegativeRate(std::vector<size_t>{1, 0}, scores, 2),
      FalseNegativeRate(std::vector<size_t>{0, 1}, scores, 2));
}

TEST(FnrTest, BoundaryTiesCountUpToSlots) {
  // Scores: 10, 5, 5, 5, 1 with c = 2: boundary value 5 occupies 1 slot.
  const std::vector<double> scores = {10.0, 5.0, 5.0, 5.0, 1.0};
  // Selecting any one of the 5s plus the 10 is a perfect selection.
  EXPECT_DOUBLE_EQ(
      FalseNegativeRate(std::vector<size_t>{0, 3}, scores, 2), 0.0);
  // Selecting two 5s (missing the 10): only one counts toward top-2.
  EXPECT_DOUBLE_EQ(
      FalseNegativeRate(std::vector<size_t>{2, 3}, scores, 2), 0.5);
}

TEST(FnrTest, ExtraSelectionsBeyondTopCDoNotGoNegative) {
  const std::vector<double> scores = {10.0, 8.0, 6.0, 4.0};
  const std::vector<size_t> selected = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(FalseNegativeRate(selected, scores, 2), 0.0);
}

TEST(SerTest, PerfectSelectionIsZero) {
  const std::vector<double> scores = {10.0, 8.0, 6.0, 4.0};
  EXPECT_DOUBLE_EQ(ScoreErrorRate(std::vector<size_t>{0, 1}, scores, 2),
                   0.0);
}

TEST(SerTest, EmptySelectionIsOne) {
  const std::vector<double> scores = {10.0, 8.0, 6.0};
  EXPECT_DOUBLE_EQ(ScoreErrorRate({}, scores, 2), 1.0);
}

TEST(SerTest, PartialCredit) {
  const std::vector<double> scores = {10.0, 8.0, 6.0, 4.0};
  // Select {10, 6} when top-2 = {10, 8}: SER = 1 − 16/18.
  EXPECT_NEAR(ScoreErrorRate(std::vector<size_t>{0, 2}, scores, 2),
              1.0 - 16.0 / 18.0, 1e-12);
}

TEST(SerTest, UnderSelectionPenalized) {
  const std::vector<double> scores = {10.0, 8.0, 6.0};
  // Selecting only the top item out of c = 2: SER = 1 − 10/18 ≈ 0.444,
  // NOT 0 (the sum convention divides by c on both sides).
  EXPECT_NEAR(ScoreErrorRate(std::vector<size_t>{0}, scores, 2),
              1.0 - 10.0 / 18.0, 1e-12);
}

TEST(SerTest, SelectingLowestGivesHighSer) {
  const std::vector<double> scores = {100.0, 99.0, 1.0, 2.0};
  EXPECT_GT(ScoreErrorRate(std::vector<size_t>{2, 3}, scores, 2), 0.9);
}

TEST(SerTest, SwapWithinTiesIsFree) {
  const std::vector<double> scores = {10.0, 5.0, 5.0, 1.0};
  EXPECT_DOUBLE_EQ(ScoreErrorRate(std::vector<size_t>{0, 2}, scores, 2),
                   ScoreErrorRate(std::vector<size_t>{0, 1}, scores, 2));
}

TEST(SerTest, AllZeroScoresDegenerate) {
  const std::vector<double> scores = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(ScoreErrorRate({}, scores, 2), 0.0);
}

// SER and FNR correlate: a selection that is strictly worse in membership
// cannot have lower SER when score gaps are uniform.
TEST(MetricsTest, SerDominatedByFnrUnderUniformGaps) {
  std::vector<double> scores(20);
  for (int i = 0; i < 20; ++i) scores[i] = 20.0 - i;
  const std::vector<size_t> good = {0, 1, 2, 3};
  const std::vector<size_t> bad = {0, 1, 18, 19};
  EXPECT_LT(FalseNegativeRate(good, scores, 4),
            FalseNegativeRate(bad, scores, 4));
  EXPECT_LT(ScoreErrorRate(good, scores, 4), ScoreErrorRate(bad, scores, 4));
}

}  // namespace
}  // namespace svt
