#include "interactive/histogram.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "interactive/linear_query.h"

namespace svt {
namespace {

TEST(HistogramTest, ZeroConstruction) {
  Histogram h(5);
  EXPECT_EQ(h.domain_size(), 5u);
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
  EXPECT_DOUBLE_EQ(h.count(3), 0.0);
}

TEST(HistogramTest, FromCounts) {
  Histogram h({1.0, 2.0, 3.0});
  EXPECT_EQ(h.domain_size(), 3u);
  EXPECT_DOUBLE_EQ(h.total(), 6.0);
}

TEST(HistogramTest, RejectsNegativeCounts) {
  EXPECT_DEATH(Histogram({1.0, -1.0}), "SVT_CHECK");
}

TEST(HistogramTest, SetAndIncrement) {
  Histogram h(3);
  h.set_count(0, 5.0);
  h.increment(1);
  h.increment(1, 2.5);
  EXPECT_DOUBLE_EQ(h.count(0), 5.0);
  EXPECT_DOUBLE_EQ(h.count(1), 3.5);
  EXPECT_DOUBLE_EQ(h.total(), 8.5);
}

TEST(HistogramTest, NormalizedToPreservesShape) {
  Histogram h({1.0, 3.0});
  Histogram n = h.NormalizedTo(100.0);
  EXPECT_DOUBLE_EQ(n.count(0), 25.0);
  EXPECT_DOUBLE_EQ(n.count(1), 75.0);
  EXPECT_DOUBLE_EQ(n.total(), 100.0);
}

TEST(HistogramTest, UniformLikeSpreadsTotal) {
  Histogram h({2.0, 0.0, 6.0, 0.0});
  Histogram u = h.UniformLike();
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(u.count(i), 2.0);
}

TEST(HistogramTest, RandomUniformCounts) {
  Rng rng(1);
  Histogram h = Histogram::Random(10, 10000, rng);
  EXPECT_DOUBLE_EQ(h.total(), 10000.0);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(h.count(i), 1000.0, 150.0);
  }
}

TEST(HistogramTest, RandomWeightedCounts) {
  Rng rng(2);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  Histogram h = Histogram::Random(3, 40000, rng, weights);
  EXPECT_NEAR(h.count(0), 10000.0, 500.0);
  EXPECT_DOUBLE_EQ(h.count(1), 0.0);
  EXPECT_NEAR(h.count(2), 30000.0, 500.0);
}

TEST(LinearQueryTest, EvaluatesDotProduct) {
  Histogram h({10.0, 20.0, 30.0});
  LinearQuery q({1.0, 0.0, 0.5});
  EXPECT_DOUBLE_EQ(q.Evaluate(h), 25.0);
}

TEST(LinearQueryTest, RejectsOutOfRangeCoefficients) {
  EXPECT_DEATH(LinearQuery({0.5, 1.5}), "coefficients");
  EXPECT_DEATH(LinearQuery({-0.1}), "coefficients");
}

TEST(LinearQueryTest, DomainMismatchDies) {
  Histogram h(2);
  LinearQuery q({1.0, 1.0, 1.0});
  EXPECT_DEATH(q.Evaluate(h), "domain mismatch");
}

TEST(LinearQueryTest, IntervalQuery) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  LinearQuery q = LinearQuery::Interval(4, 1, 3);
  EXPECT_DOUBLE_EQ(q.Evaluate(h), 6.0);
}

TEST(LinearQueryTest, RandomSubsetIsBinary) {
  Rng rng(3);
  LinearQuery q = LinearQuery::RandomSubset(64, rng);
  int ones = 0;
  for (double c : q.coefficients()) {
    EXPECT_TRUE(c == 0.0 || c == 1.0);
    ones += c == 1.0 ? 1 : 0;
  }
  EXPECT_GT(ones, 10);
  EXPECT_LT(ones, 54);
}

TEST(LinearQueryTest, RandomFractionalInRange) {
  Rng rng(4);
  LinearQuery q = LinearQuery::RandomFractional(32, rng);
  for (double c : q.coefficients()) {
    EXPECT_GE(c, 0.0);
    EXPECT_LT(c, 1.0);
  }
}

TEST(LinearQueryTest, SensitivityIsOne) {
  Rng rng(5);
  EXPECT_DOUBLE_EQ(LinearQuery::RandomSubset(8, rng).sensitivity(), 1.0);
}

// Sensitivity property: adding one record to any bin changes any linear
// query by at most its coefficient ≤ 1.
TEST(LinearQueryTest, AddOneRecordChangesAnswerByAtMostOne) {
  Rng rng(6);
  Histogram h = Histogram::Random(16, 500, rng);
  LinearQuery q = LinearQuery::RandomFractional(16, rng);
  const double before = q.Evaluate(h);
  for (size_t bin = 0; bin < 16; ++bin) {
    Histogram neighbor = h;
    neighbor.increment(bin);
    EXPECT_LE(std::abs(q.Evaluate(neighbor) - before), 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace svt
