#include "core/budget.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/response.h"
#include "core/variant_spec.h"

namespace svt {
namespace {

TEST(BudgetAllocationTest, HalvesSplitsEvenly) {
  const BudgetSplit s = BudgetAllocation::Halves().Split(1.0);
  EXPECT_DOUBLE_EQ(s.epsilon1, 0.5);
  EXPECT_DOUBLE_EQ(s.epsilon2, 0.5);
  EXPECT_DOUBLE_EQ(s.epsilon3, 0.0);
  EXPECT_DOUBLE_EQ(s.total(), 1.0);
}

TEST(BudgetAllocationTest, OneToThree) {
  const BudgetSplit s = BudgetAllocation::OneToThree().Split(0.4);
  EXPECT_DOUBLE_EQ(s.epsilon1, 0.1);
  EXPECT_DOUBLE_EQ(s.epsilon2, 0.3);
}

TEST(BudgetAllocationTest, OneToC) {
  const BudgetSplit s = BudgetAllocation::OneToC(9).Split(1.0);
  EXPECT_DOUBLE_EQ(s.epsilon1, 0.1);
  EXPECT_DOUBLE_EQ(s.epsilon2, 0.9);
}

TEST(BudgetAllocationTest, OptimalGeneralRatio) {
  // Eq. (12): eps1 : eps2 = 1 : (2c)^{2/3}.
  const BudgetAllocation a = BudgetAllocation::Optimal(4, false);
  EXPECT_NEAR(a.ratio(), std::pow(8.0, 2.0 / 3.0), 1e-12);
  EXPECT_EQ(a.name(), "1:(2c)^2/3");
}

TEST(BudgetAllocationTest, OptimalMonotonicRatio) {
  const BudgetAllocation a = BudgetAllocation::Optimal(8, true);
  EXPECT_NEAR(a.ratio(), 4.0, 1e-12);  // 8^{2/3} = 4
  EXPECT_EQ(a.name(), "1:c^2/3");
}

TEST(BudgetAllocationTest, NumericFractionReservesEpsilon3) {
  const BudgetSplit s = BudgetAllocation::Halves().Split(1.0, 0.5);
  EXPECT_DOUBLE_EQ(s.epsilon3, 0.5);
  EXPECT_DOUBLE_EQ(s.epsilon1, 0.25);
  EXPECT_DOUBLE_EQ(s.epsilon2, 0.25);
}

TEST(BudgetAllocationTest, SplitsSumToTotal) {
  for (double eps : {0.01, 0.1, 1.0, 4.0}) {
    for (double frac : {0.0, 0.2, 0.9}) {
      const BudgetSplit s = BudgetAllocation::Optimal(50, true).Split(eps, frac);
      EXPECT_NEAR(s.total(), eps, 1e-12);
    }
  }
}

// Property sweep: Eq. (12)'s ratio minimizes the comparison-noise variance
// over a grid of alternative ratios, for both monotonic and general noise.
class OptimalAllocationSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(OptimalAllocationSweep, MinimizesComparisonVariance) {
  const int c = std::get<0>(GetParam());
  const bool monotonic = std::get<1>(GetParam());
  const double epsilon = 0.1;
  const double optimal_var = ComparisonNoiseVariance(
      BudgetAllocation::Optimal(c, monotonic).Split(epsilon), 1.0, c,
      monotonic);
  for (double ratio = 0.25; ratio <= 4096.0; ratio *= 2.0) {
    const double var = ComparisonNoiseVariance(
        BudgetAllocation::Ratio(1.0, ratio).Split(epsilon), 1.0, c,
        monotonic);
    EXPECT_GE(var, optimal_var * (1.0 - 1e-9))
        << "c=" << c << " monotonic=" << monotonic << " ratio=1:" << ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cutoffs, OptimalAllocationSweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 25, 100, 300),
                       ::testing::Bool()));

TEST(ComparisonNoiseVarianceTest, ClosedForm) {
  // eps1 = eps2 = 0.5, c = 1, general: var = 2*(1/.5)^2 + 2*(2/.5)^2 = 40.
  const BudgetSplit s{0.5, 0.5, 0.0};
  EXPECT_NEAR(ComparisonNoiseVariance(s, 1.0, 1, false), 40.0, 1e-12);
  // Monotonic: 2*(2)^2 + 2*(2)^2 = 16.
  EXPECT_NEAR(ComparisonNoiseVariance(s, 1.0, 1, true), 16.0, 1e-12);
}

TEST(PrivacyAccountantTest, ChargesUpToTotal) {
  PrivacyAccountant acct(1.0);
  EXPECT_TRUE(acct.Charge(0.4).ok());
  EXPECT_TRUE(acct.Charge(0.6).ok());
  EXPECT_NEAR(acct.spent(), 1.0, 1e-12);
  EXPECT_NEAR(acct.remaining(), 0.0, 1e-12);
}

TEST(PrivacyAccountantTest, RejectsOverdraft) {
  PrivacyAccountant acct(1.0);
  EXPECT_TRUE(acct.Charge(0.9).ok());
  const Status s = acct.Charge(0.2);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kExhausted);
  // Failed charge must not be recorded.
  EXPECT_NEAR(acct.spent(), 0.9, 1e-12);
}

TEST(PrivacyAccountantTest, RejectsNegative) {
  PrivacyAccountant acct(1.0);
  EXPECT_FALSE(acct.Charge(-0.1).ok());
}

TEST(PrivacyAccountantTest, ToleratesRoundingAtBoundary) {
  PrivacyAccountant acct(1.0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(acct.Charge(0.1).ok()) << "charge " << i;
  }
}

TEST(PrivacyAccountantTest, CanChargePredictsChargeExactSum) {
  // 10 × 0.1 sums exactly to the 1.0 budget (up to rounding): every round
  // must be both predicted fundable and actually funded, and the 11th must
  // be predicted unfundable before Charge refuses it.
  PrivacyAccountant acct(1.0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(acct.CanCharge(0.1)) << "round " << i;
    ASSERT_TRUE(acct.Charge(0.1).ok()) << "round " << i;
  }
  EXPECT_FALSE(acct.CanCharge(0.1));
  EXPECT_EQ(acct.Charge(0.1).code(), StatusCode::kExhausted);
}

TEST(PrivacyAccountantTest, CanChargePredictsChargeInexactSum) {
  // 0.3 does not divide 1.0: three rounds fit, the fourth does not.
  PrivacyAccountant acct(1.0);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(acct.CanCharge(0.3)) << "round " << i;
    ASSERT_TRUE(acct.Charge(0.3).ok()) << "round " << i;
  }
  EXPECT_FALSE(acct.CanCharge(0.3));
  EXPECT_FALSE(acct.Charge(0.3).ok());
}

TEST(PrivacyAccountantTest, CanChargeAgreesWithChargeOnAGrid) {
  // Whatever the boundary rounding, the probe and the action must agree:
  // Charge succeeds iff CanCharge said so immediately before.
  for (const double total : {1.0, 0.7, 1e-3, 12.5}) {
    for (const double step : {total / 10.0, total / 3.0, total / 7.0}) {
      PrivacyAccountant acct(total);
      for (int i = 0; i < 40; ++i) {
        const bool predicted = acct.CanCharge(step);
        const bool actual = acct.Charge(step).ok();
        ASSERT_EQ(predicted, actual)
            << "total=" << total << " step=" << step << " round " << i;
        if (!actual) break;
      }
    }
  }
  PrivacyAccountant acct(1.0);
  EXPECT_FALSE(acct.CanCharge(-0.1));  // negative: same answer as Charge
  EXPECT_FALSE(acct.Charge(-0.1).ok());
}

TEST(PrivacyAccountantTest, ExhaustedMessageHasRoundTripPrecision) {
  // A boundary overdraft differs from the total only past the 6 digits
  // std::to_string prints; the message must keep the distinction.
  PrivacyAccountant acct(1.0);
  ASSERT_TRUE(acct.Charge(1.0).ok());
  const Status s = acct.Charge(1e-7);
  ASSERT_EQ(s.code(), StatusCode::kExhausted);
  EXPECT_NE(s.message().find("1e-07"), std::string::npos) << s.message();
  EXPECT_EQ(s.message().find("0.000000"), std::string::npos) << s.message();
}

TEST(AdvancedCompositionTest, MatchesFormula) {
  // eps' = sqrt(2k ln(1/d)) e + k e (e^e - 1).
  const double eps = 0.1;
  const double delta = 1e-6;
  const int k = 50;
  const double expect =
      std::sqrt(2.0 * k * std::log(1.0 / delta)) * eps +
      k * eps * (std::exp(eps) - 1.0);
  EXPECT_NEAR(AdvancedCompositionEpsilon(k, eps, delta), expect, 1e-12);
}

TEST(AdvancedCompositionTest, SingleStepExceedsEpsilonSlightly) {
  // Even k = 1 pays the sqrt term; composition is never free.
  EXPECT_GT(AdvancedCompositionEpsilon(1, 0.1, 1e-6), 0.1);
}

TEST(AdvancedCompositionTest, BeatsBasicCompositionForSmallEpsilon) {
  // For many steps of a small epsilon, advanced composition's eps' is far
  // below the basic k*eps bound — the reason (eps, delta)-SVT variants
  // exist (§3.4).
  const int k = 10000;
  const double eps = 0.001;
  EXPECT_LT(AdvancedCompositionEpsilon(k, eps, 1e-9),
            k * eps * 0.5);
}

TEST(AdvancedCompositionTest, MonotoneInAllArguments) {
  EXPECT_LT(AdvancedCompositionEpsilon(10, 0.1, 1e-6),
            AdvancedCompositionEpsilon(20, 0.1, 1e-6));
  EXPECT_LT(AdvancedCompositionEpsilon(10, 0.1, 1e-6),
            AdvancedCompositionEpsilon(10, 0.2, 1e-6));
  EXPECT_LT(AdvancedCompositionEpsilon(10, 0.1, 1e-3),
            AdvancedCompositionEpsilon(10, 0.1, 1e-9));
}

TEST(AdvancedCompositionTest, PerStepInverseRoundTrips) {
  for (int k : {1, 10, 100, 1000}) {
    const double per_step =
        PerStepEpsilonForAdvancedComposition(k, 1.0, 1e-6);
    ASSERT_GT(per_step, 0.0) << "k=" << k;
    // Composing the per-step epsilon must land at (just below) the target.
    EXPECT_LE(AdvancedCompositionEpsilon(k, per_step, 1e-6), 1.0 + 1e-9);
    EXPECT_GT(AdvancedCompositionEpsilon(k, per_step * 1.01, 1e-6), 1.0);
  }
}

TEST(ResponseTest, Factories) {
  EXPECT_EQ(Response::Below().outcome, Outcome::kBelow);
  EXPECT_EQ(Response::Above().outcome, Outcome::kAbove);
  const Response v = Response::AboveValue(3.5);
  EXPECT_EQ(v.outcome, Outcome::kAboveValue);
  EXPECT_EQ(v.value, 3.5);
}

TEST(ResponseTest, Positivity) {
  EXPECT_FALSE(Response::Below().is_positive());
  EXPECT_TRUE(Response::Above().is_positive());
  EXPECT_TRUE(Response::AboveValue(0.0).is_positive());
}

TEST(ResponseTest, Equality) {
  EXPECT_EQ(Response::Above(), Response::Above());
  EXPECT_EQ(Response::AboveValue(1.0), Response::AboveValue(1.0));
  EXPECT_FALSE(Response::AboveValue(1.0) == Response::AboveValue(2.0));
  EXPECT_FALSE(Response::Above() == Response::Below());
}

TEST(ResponseTest, PatternToString) {
  std::vector<Response> rs = {Response::Below(), Response::Above(),
                              Response::Below()};
  EXPECT_EQ(ToString(rs), "_T_");
}

TEST(VariantSpecTest, Alg1Scales) {
  const VariantSpec s = MakeAlg1Spec(1.0, 2.0, 5);
  EXPECT_DOUBLE_EQ(s.rho_scale, 2.0 / 0.5);          // Δ/ε1
  EXPECT_DOUBLE_EQ(s.nu_scale, 2.0 * 5 * 2.0 / 0.5); // 2cΔ/ε2
  ASSERT_TRUE(s.cutoff.has_value());
  EXPECT_EQ(*s.cutoff, 5);
  EXPECT_FALSE(s.resample_rho_after_positive);
  EXPECT_FALSE(s.emits_numeric());
  EXPECT_EQ(s.actual_privacy, PrivacyClass::kPureDp);
}

TEST(VariantSpecTest, Alg2ScalesCarryFactorOfC) {
  const VariantSpec s = MakeAlg2Spec(1.0, 1.0, 10);
  EXPECT_DOUBLE_EQ(s.rho_scale, 10.0 / 0.5);
  EXPECT_DOUBLE_EQ(s.nu_scale, 20.0 / 0.5);
  EXPECT_TRUE(s.resample_rho_after_positive);
  EXPECT_DOUBLE_EQ(s.rho_resample_scale, 10.0 / 0.5);
}

TEST(VariantSpecTest, Alg3EmitsQueryValue) {
  const VariantSpec s = MakeAlg3Spec(1.0, 1.0, 3);
  EXPECT_TRUE(s.output_query_value_on_positive);
  EXPECT_TRUE(s.emits_numeric());
  EXPECT_DOUBLE_EQ(s.nu_scale, 3.0 / 0.5);  // cΔ/ε2
  EXPECT_EQ(s.actual_privacy, PrivacyClass::kInfiniteDp);
}

TEST(VariantSpecTest, Alg4QuarterBudgetAndScaledPrivacy) {
  const VariantSpec s = MakeAlg4Spec(1.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(s.budget.epsilon1, 0.25);
  EXPECT_DOUBLE_EQ(s.budget.epsilon2, 0.75);
  EXPECT_DOUBLE_EQ(s.nu_scale, 1.0 / 0.75);  // Δ/ε2, no factor of c
  EXPECT_EQ(s.actual_privacy, PrivacyClass::kScaledDp);
  EXPECT_DOUBLE_EQ(s.privacy_scale_factor, (1.0 + 6.0 * 4) / 4.0);
}

TEST(VariantSpecTest, Alg4MonotonicFactor) {
  const VariantSpec s = MakeAlg4Spec(1.0, 1.0, 4, /*monotonic=*/true);
  EXPECT_DOUBLE_EQ(s.privacy_scale_factor, (1.0 + 3.0 * 4) / 4.0);
}

TEST(VariantSpecTest, Alg5NoNoiseNoCutoff) {
  const VariantSpec s = MakeAlg5Spec(1.0, 1.0);
  EXPECT_EQ(s.nu_scale, 0.0);
  EXPECT_FALSE(s.cutoff.has_value());
  EXPECT_EQ(s.actual_privacy, PrivacyClass::kInfiniteDp);
}

TEST(VariantSpecTest, Alg6NoCutoff) {
  const VariantSpec s = MakeAlg6Spec(1.0, 1.0);
  EXPECT_DOUBLE_EQ(s.nu_scale, 2.0);  // Δ/(ε/2)
  EXPECT_FALSE(s.cutoff.has_value());
}

TEST(VariantSpecTest, StandardMonotonicHalvesNoise) {
  const BudgetSplit split{0.5, 0.5, 0.0};
  const VariantSpec gen = MakeStandardSpec(split, 1.0, 10, false);
  const VariantSpec mono = MakeStandardSpec(split, 1.0, 10, true);
  EXPECT_DOUBLE_EQ(gen.nu_scale, 2.0 * mono.nu_scale);
}

TEST(VariantSpecTest, StandardWithNumericOutput) {
  const BudgetSplit split{0.25, 0.25, 0.5};
  const VariantSpec s = MakeStandardSpec(split, 1.0, 5, false);
  EXPECT_DOUBLE_EQ(s.numeric_scale, 5.0 / 0.5);  // cΔ/ε3
  EXPECT_TRUE(s.emits_numeric());
  EXPECT_FALSE(s.output_query_value_on_positive);
}

TEST(VariantSpecTest, GpttEqualsAlg6AtHalfSplit) {
  const VariantSpec gptt = MakeGpttSpec(0.5, 0.5, 1.0);
  const VariantSpec alg6 = MakeAlg6Spec(1.0, 1.0);
  EXPECT_DOUBLE_EQ(gptt.rho_scale, alg6.rho_scale);
  EXPECT_DOUBLE_EQ(gptt.nu_scale, alg6.nu_scale);
  EXPECT_EQ(gptt.cutoff.has_value(), alg6.cutoff.has_value());
}

TEST(VariantSpecTest, MakeSpecDispatches) {
  for (VariantId id : {VariantId::kAlg1, VariantId::kAlg2, VariantId::kAlg3,
                       VariantId::kAlg4, VariantId::kAlg5, VariantId::kAlg6,
                       VariantId::kStandard, VariantId::kGptt,
                       VariantId::kExpNoise, VariantId::kRevisited}) {
    const VariantSpec s = MakeSpec(id, 1.0, 1.0, 3);
    EXPECT_GT(s.rho_scale, 0.0) << VariantIdToString(id);
    EXPECT_FALSE(s.name.empty());
  }
}

TEST(VariantSpecTest, FigureTwoPrivacyRow) {
  // The last row of Figure 2, as code.
  EXPECT_EQ(MakeSpec(VariantId::kAlg1, 1, 1, 3).actual_privacy,
            PrivacyClass::kPureDp);
  EXPECT_EQ(MakeSpec(VariantId::kAlg2, 1, 1, 3).actual_privacy,
            PrivacyClass::kPureDp);
  EXPECT_EQ(MakeSpec(VariantId::kAlg3, 1, 1, 3).actual_privacy,
            PrivacyClass::kInfiniteDp);
  EXPECT_EQ(MakeSpec(VariantId::kAlg4, 1, 1, 3).actual_privacy,
            PrivacyClass::kScaledDp);
  EXPECT_EQ(MakeSpec(VariantId::kAlg5, 1, 1, 3).actual_privacy,
            PrivacyClass::kInfiniteDp);
  EXPECT_EQ(MakeSpec(VariantId::kAlg6, 1, 1, 3).actual_privacy,
            PrivacyClass::kInfiniteDp);
}

}  // namespace
}  // namespace svt
