#include "interactive/session.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace svt {
namespace {

SessionOptions BasicOptions() {
  SessionOptions o;
  o.total_epsilon = 1.0;
  o.epsilon_per_round = 0.25;
  o.round.sensitivity = 1.0;
  o.round.cutoff = 2;
  o.round.monotonic = true;
  return o;
}

TEST(SessionOptionsTest, Validation) {
  SessionOptions o = BasicOptions();
  EXPECT_TRUE(o.Validate().ok());
  o.total_epsilon = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o = BasicOptions();
  o.epsilon_per_round = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o = BasicOptions();
  o.epsilon_per_round = 2.0;  // exceeds total
  EXPECT_FALSE(o.Validate().ok());
  o = BasicOptions();
  o.round.cutoff = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(SessionTest, CreateRejectsNullRng) {
  EXPECT_FALSE(AboveThresholdSession::Create(BasicOptions(), nullptr).ok());
}

TEST(SessionTest, FirstRoundChargedLazily) {
  Rng rng(1);
  auto session = AboveThresholdSession::Create(BasicOptions(), &rng).value();
  EXPECT_EQ(session->rounds_started(), 0);
  EXPECT_DOUBLE_EQ(session->accountant().spent(), 0.0);
  ASSERT_TRUE(session->Process(0.0, 0.0).ok());
  EXPECT_EQ(session->rounds_started(), 1);
  EXPECT_DOUBLE_EQ(session->accountant().spent(), 0.25);
}

TEST(SessionTest, NegativesNeverStartNewRounds) {
  Rng rng(2);
  auto session = AboveThresholdSession::Create(BasicOptions(), &rng).value();
  for (int i = 0; i < 5000; ++i) {
    const auto r = session->Process(-1e9, 0.0);
    ASSERT_TRUE(r.ok());
    ASSERT_FALSE(r->is_positive());
  }
  EXPECT_EQ(session->rounds_started(), 1);
  EXPECT_DOUBLE_EQ(session->accountant().spent(), 0.25);
  EXPECT_FALSE(session->exhausted());
}

TEST(SessionTest, RollsOverAfterRoundExhaustion) {
  Rng rng(3);
  auto session = AboveThresholdSession::Create(BasicOptions(), &rng).value();
  // Positives exhaust each round after cutoff=2; 4 rounds fit in the total
  // budget (4 * 0.25 = 1.0).
  int positives = 0;
  while (!session->exhausted()) {
    const auto r = session->Process(1e9, 0.0);
    ASSERT_TRUE(r.ok());
    positives += r->is_positive() ? 1 : 0;
  }
  EXPECT_EQ(positives, 8);  // 4 rounds x cutoff 2
  EXPECT_EQ(session->rounds_started(), 4);
  EXPECT_NEAR(session->accountant().spent(), 1.0, 1e-9);
  EXPECT_EQ(session->positives_emitted(), 8);
}

TEST(SessionTest, ProcessAfterExhaustionFails) {
  Rng rng(4);
  SessionOptions o = BasicOptions();
  o.total_epsilon = 0.25;  // exactly one round
  auto session = AboveThresholdSession::Create(o, &rng).value();
  while (!session->exhausted()) {
    ASSERT_TRUE(session->Process(1e9, 0.0).ok());
  }
  const auto r = session->Process(1e9, 0.0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExhausted);
}

TEST(SessionTest, CountsQueries) {
  Rng rng(5);
  auto session = AboveThresholdSession::Create(BasicOptions(), &rng).value();
  for (int i = 0; i < 37; ++i) {
    ASSERT_TRUE(session->Process(-1e9, 0.0).ok());
  }
  EXPECT_EQ(session->queries_processed(), 37);
}

TEST(SessionTest, MixedStreamStaysWithinBudget) {
  Rng rng(6);
  SessionOptions o = BasicOptions();
  o.total_epsilon = 0.8;
  o.epsilon_per_round = 0.2;
  auto session = AboveThresholdSession::Create(o, &rng).value();
  Rng stream(7);
  int64_t answered = 0;
  while (!session->exhausted() && answered < 100000) {
    const double q = stream.NextBernoulli(0.01) ? 1e9 : -1e9;
    const auto r = session->Process(q, 0.0);
    if (!r.ok()) break;
    ++answered;
  }
  EXPECT_LE(session->accountant().spent(), 0.8 + 1e-9);
  EXPECT_LE(session->rounds_started(), 4);
}

TEST(SessionTest, ExactFitBudgetFundsEveryRound) {
  // 10 rounds of 0.1 sum exactly to the 1.0 budget. exhausted() and
  // Charge now share PrivacyAccountant::CanCharge, so the session must
  // fund all 10 rounds and flip exhausted() exactly when an 11th would be
  // needed — the old re-derived 1e-12 tolerance could disagree with
  // Charge's 1e-9 slack on either side of the boundary.
  Rng rng(21);
  SessionOptions o = BasicOptions();
  o.total_epsilon = 1.0;
  o.epsilon_per_round = 0.1;
  o.round.cutoff = 1;
  auto session = AboveThresholdSession::Create(o, &rng).value();
  while (!session->exhausted()) {
    // exhausted() == false must guarantee the next query succeeds.
    ASSERT_TRUE(session->Process(1e9, 0.0).ok())
        << "after round " << session->rounds_started();
  }
  EXPECT_EQ(session->rounds_started(), 10);
  EXPECT_EQ(session->positives_emitted(), 10);
  // exhausted() == true must guarantee the next query fails.
  EXPECT_EQ(session->Process(1e9, 0.0).status().code(),
            StatusCode::kExhausted);
}

TEST(SessionTest, InexactBudgetStopsAtLastFundableRound) {
  Rng rng(22);
  SessionOptions o = BasicOptions();
  o.total_epsilon = 1.0;
  o.epsilon_per_round = 0.3;  // three rounds fit, the fourth does not
  o.round.cutoff = 1;
  auto session = AboveThresholdSession::Create(o, &rng).value();
  while (!session->exhausted()) {
    ASSERT_TRUE(session->Process(1e9, 0.0).ok());
  }
  EXPECT_EQ(session->rounds_started(), 3);
  EXPECT_FALSE(session->Process(1e9, 0.0).ok());
}

TEST(SessionTest, ExhaustedAgreesWithAccountantAtEveryStep) {
  Rng rng(23);
  SessionOptions o = BasicOptions();
  o.total_epsilon = 0.7;
  o.epsilon_per_round = 0.7 / 7.0;  // inexact per-round value
  o.round.cutoff = 1;
  auto session = AboveThresholdSession::Create(o, &rng).value();
  for (int i = 0; i < 20; ++i) {
    const bool was_exhausted = session->exhausted();
    const auto r = session->Process(1e9, 0.0);
    ASSERT_EQ(was_exhausted, !r.ok()) << "query " << i;
    if (!r.ok()) break;
  }
  EXPECT_EQ(session->rounds_started(), 7);
}

TEST(SessionTest, DeterministicGivenSeed) {
  const auto run = [](uint64_t seed) {
    Rng rng(seed);
    auto session =
        AboveThresholdSession::Create(BasicOptions(), &rng).value();
    std::string transcript;
    Rng stream(99);
    for (int i = 0; i < 200 && !session->exhausted(); ++i) {
      const double q = stream.NextUniform(-30.0, 30.0);
      const auto r = session->Process(q, 0.0);
      if (!r.ok()) break;
      transcript += r->is_positive() ? 'T' : '_';
    }
    return transcript;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace svt
