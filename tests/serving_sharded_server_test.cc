// ShardedSvtServer: deterministic routing, bitwise reproducibility for a
// fixed (seed, shard count, submission order), equivalence of each shard
// with a standalone mechanism on the same forked stream, budget-metered
// exhaustion, and thread-safety of concurrent shard execution.

#include "serving/sharded_server.h"

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "interactive/session.h"

namespace svt {
namespace {

ServingOptions AutoResetOptions(int shards, uint64_t seed) {
  ServingOptions o;
  o.num_shards = shards;
  o.seed = seed;
  o.mode = ShardMode::kAutoReset;
  o.svt.epsilon = 1.0;
  o.svt.cutoff = 2;
  o.svt.monotonic = true;
  // Numeric positives make every comparison bitwise on doubles.
  o.svt.numeric_output_fraction = 0.2;
  return o;
}

ServingOptions MeteredOptions(int shards, uint64_t seed) {
  ServingOptions o;
  o.num_shards = shards;
  o.seed = seed;
  o.mode = ShardMode::kBudgetMetered;
  o.session.total_epsilon = 1.0;
  o.session.epsilon_per_round = 0.1;
  o.session.round.cutoff = 2;
  o.session.round.monotonic = true;
  return o;
}

std::vector<double> MakeAnswers(size_t n, uint64_t seed) {
  Rng gen(seed);
  std::vector<double> answers(n);
  for (size_t i = 0; i < n; ++i) answers[i] = gen.NextUniform(-25.0, 25.0);
  return answers;
}

TEST(ServingOptionsTest, Validation) {
  EXPECT_TRUE(AutoResetOptions(4, 1).Validate().ok());
  ServingOptions o = AutoResetOptions(0, 1);
  EXPECT_FALSE(o.Validate().ok());
  o = AutoResetOptions(2, 1);
  o.svt.epsilon = -1.0;
  EXPECT_FALSE(o.Validate().ok());
  EXPECT_FALSE(ShardedSvtServer::Create(o).ok());
  o = MeteredOptions(2, 1);
  o.session.epsilon_per_round = 2.0;  // exceeds total
  EXPECT_FALSE(o.Validate().ok());
}

TEST(ShardedSvtServerTest, RoutingIsDeterministicAndCoversShards) {
  auto server = ShardedSvtServer::Create(AutoResetOptions(4, 9)).value();
  auto server2 = ShardedSvtServer::Create(AutoResetOptions(4, 10)).value();
  std::set<int> seen;
  for (uint64_t key = 0; key < 1000; ++key) {
    const int s = server->ShardOf(key);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    // Routing is stateless and seed-independent: only (key, num_shards).
    ASSERT_EQ(s, server->ShardOf(key));
    ASSERT_EQ(s, server2->ShardOf(key));
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ShardedSvtServerTest, ResponsesBitwiseReproducible) {
  // Same (seed, shard count, submission order) on two independently
  // created servers ⇒ identical responses, down to numeric-answer bits.
  const std::vector<double> answers = MakeAnswers(3000, 42);
  const auto run = [&] {
    auto server = ShardedSvtServer::Create(AutoResetOptions(4, 77)).value();
    std::vector<Response> transcript;
    for (uint64_t key = 0; key < 24; ++key) {
      const size_t begin = (key * 113) % 2000;
      server->Execute(key, std::span(answers).subspan(begin, 500), 0.0,
                      &transcript);
    }
    return transcript;
  };
  const std::vector<Response> a = run();
  const std::vector<Response> b = run();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(ShardedSvtServerTest, ShardStreamsAreIndependent) {
  // Adding traffic to other shards must not perturb a shard's responses:
  // its stream depends only on its own submission order.
  const std::vector<double> answers = MakeAnswers(1000, 43);
  const int shard = 2;

  auto quiet = ShardedSvtServer::Create(AutoResetOptions(4, 5)).value();
  std::vector<Response> alone;
  quiet->ExecuteOnShard(shard, answers, 0.0, &alone);

  auto busy = ShardedSvtServer::Create(AutoResetOptions(4, 5)).value();
  std::vector<Response> sink;
  for (int other = 0; other < 4; ++other) {
    if (other != shard) busy->ExecuteOnShard(other, answers, 0.0, &sink);
  }
  std::vector<Response> with_traffic;
  busy->ExecuteOnShard(shard, answers, 0.0, &with_traffic);
  EXPECT_EQ(alone, with_traffic);
}

TEST(ShardedSvtServerTest, ShardMatchesStandaloneMechanismOnForkedStream) {
  // Each shard is exactly a SparseVector on the i-th fork of Rng(seed),
  // auto-Reset on exhaustion — replicate shard 1 by hand, streaming.
  const ServingOptions o = AutoResetOptions(3, 99);
  const std::vector<double> answers = MakeAnswers(800, 44);

  Rng master(o.seed);
  master.Fork();  // shard 0's stream, not needed here
  Rng stream1 = master.Fork();
  auto reference = SparseVector::Create(o.svt, &stream1).value();
  std::vector<Response> expect;
  for (double a : answers) {
    if (reference->exhausted()) reference->Reset();
    expect.push_back(reference->Process(a, 0.0));
  }

  auto server = ShardedSvtServer::Create(o).value();
  std::vector<Response> got;
  EXPECT_EQ(server->ExecuteOnShard(1, answers, 0.0, &got), answers.size());
  EXPECT_EQ(got, expect);
}

TEST(ShardedSvtServerTest, ExponentialNoiseShardMatchesStreaming) {
  // The exponential-noise axis through sharded serving: a shard running
  // one-sided ρ + exponential ν (ρ redrawn after positives) through the
  // batch engine must equal the hand-rolled streaming SparseVector on the
  // same forked stream — the serving layer takes the new variants without
  // any serving-side code.
  ServingOptions o = AutoResetOptions(3, 99);
  o.svt.rho_kind = NoiseKind::kExponential;
  o.svt.nu_kind = NoiseKind::kExponential;
  o.svt.resample_threshold_noise = true;
  const std::vector<double> answers = MakeAnswers(800, 44);

  Rng master(o.seed);
  master.Fork();
  Rng stream1 = master.Fork();
  auto reference = SparseVector::Create(o.svt, &stream1).value();
  std::vector<Response> expect;
  int positives = 0;
  for (double a : answers) {
    if (reference->exhausted()) reference->Reset();
    expect.push_back(reference->Process(a, 0.0));
    positives += expect.back().is_positive();
  }
  ASSERT_GT(positives, 0) << "workload must exercise resampled one-sided rho";

  auto server = ShardedSvtServer::Create(o).value();
  std::vector<Response> got;
  EXPECT_EQ(server->ExecuteOnShard(1, answers, 0.0, &got), answers.size());
  EXPECT_EQ(got, expect);
}

TEST(ShardedSvtServerTest, MeteredShardMatchesStandaloneSession) {
  const ServingOptions o = MeteredOptions(2, 31);
  const std::vector<double> answers = MakeAnswers(4000, 45);

  Rng master(o.seed);
  Rng stream0 = master.Fork();
  auto reference =
      AboveThresholdSession::Create(o.session, &stream0).value();
  std::vector<Response> expect;
  reference->RunAppend(answers, 0.0, &expect);

  auto server = ShardedSvtServer::Create(o).value();
  std::vector<Response> got;
  const size_t n = server->ExecuteOnShard(0, answers, 0.0, &got);
  EXPECT_EQ(n, expect.size());
  EXPECT_EQ(got, expect);
}

TEST(ShardedSvtServerTest, MeteredShardsExhaustIndependently) {
  auto server = ShardedSvtServer::Create(MeteredOptions(2, 8)).value();
  const std::vector<double> hot(4000, 1e9);
  std::vector<Response> out;
  const size_t n = server->ExecuteOnShard(0, hot, 0.0, &out);
  EXPECT_LT(n, hot.size());  // stopped at the budget, not the stream end
  EXPECT_EQ(n, out.size());
  EXPECT_TRUE(server->ShardExhausted(0));
  EXPECT_FALSE(server->ShardExhausted(1));
  // Positives per round × rounds: cutoff 2, 10 rounds of 0.1 in 1.0.
  EXPECT_EQ(server->StatsForShard(0).positives, 20);
  std::vector<Response> more;
  EXPECT_EQ(server->ExecuteOnShard(0, hot, 0.0, &more), 0u);
}

TEST(ShardedSvtServerTest, StatsAggregate) {
  auto server = ShardedSvtServer::Create(AutoResetOptions(3, 12)).value();
  const std::vector<double> answers = MakeAnswers(300, 46);
  std::vector<Response> sink;
  for (uint64_t key = 0; key < 9; ++key) {
    server->Execute(key, answers, 0.0, &sink);
  }
  const ServingStats total = server->TotalStats();
  EXPECT_EQ(total.batches, 9);
  EXPECT_EQ(total.queries, 9 * 300);
  int64_t positives = 0;
  for (const Response& r : sink) positives += r.is_positive() ? 1 : 0;
  EXPECT_EQ(total.positives, positives);
}

TEST(ShardedSvtServerTest, ConcurrentShardExecutionMatchesSerial) {
  // One thread per shard, all executing simultaneously; the result must be
  // byte-identical to the serial run because shards share no state.
  const int shards = 4;
  const std::vector<double> answers = MakeAnswers(2000, 47);

  auto serial = ShardedSvtServer::Create(AutoResetOptions(shards, 3)).value();
  std::vector<std::vector<Response>> expect(shards);
  for (int s = 0; s < shards; ++s) {
    serial->ExecuteOnShard(s, answers, 0.0, &expect[s]);
  }

  auto server = ShardedSvtServer::Create(AutoResetOptions(shards, 3)).value();
  std::vector<std::vector<Response>> got(shards);
  {
    std::vector<std::thread> threads;
    threads.reserve(shards);
    for (int s = 0; s < shards; ++s) {
      threads.emplace_back([&, s] {
        server->ExecuteOnShard(s, answers, 0.0, &got[s]);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (int s = 0; s < shards; ++s) {
    EXPECT_EQ(got[s], expect[s]) << "shard " << s;
  }
}

TEST(ShardedSvtServerTest, StatsPolledDuringConcurrentBatches) {
  // Regression guard for the stats/Run race: StatsForShard()/TotalStats()
  // read the counters Run mutates, so both sides must hold the shard
  // mutex. A poller hammers the stats accessors while worker threads
  // execute batches; under ThreadSanitizer (CI job) an unlocked read is a
  // reported race, and the monotonicity assertions below catch torn or
  // stale aggregates even in a plain build.
  const int shards = 4;
  const std::vector<double> answers = MakeAnswers(500, 48);
  auto server = ShardedSvtServer::Create(AutoResetOptions(shards, 13)).value();

  std::atomic<bool> stop{false};
  std::atomic<int64_t> polls{0};
  std::thread poller([&] {
    int64_t last_queries = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const ServingStats total = server->TotalStats();
      // Counters only grow, and every batch's counts are published
      // atomically under the shard lock.
      EXPECT_GE(total.queries, last_queries);
      EXPECT_GE(total.queries, total.positives);
      EXPECT_GE(total.batches, 0);
      last_queries = total.queries;
      for (int s = 0; s < shards; ++s) {
        const ServingStats per = server->StatsForShard(s);
        EXPECT_GE(per.queries, per.positives);
      }
      polls.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const int kThreads = 2;
  const int kBatchesPerThread = 40;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<Response> sink;
      for (int b = 0; b < kBatchesPerThread; ++b) {
        sink.clear();
        server->Execute(static_cast<uint64_t>(t * 1000 + b), answers, 0.0,
                        &sink);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  stop.store(true);
  poller.join();

  EXPECT_GT(polls.load(), 0);
  const ServingStats total = server->TotalStats();
  EXPECT_EQ(total.batches, kThreads * kBatchesPerThread);
  EXPECT_EQ(total.queries, static_cast<int64_t>(kThreads) *
                               kBatchesPerThread *
                               static_cast<int64_t>(answers.size()));
}

}  // namespace
}  // namespace svt
