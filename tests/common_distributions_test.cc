#include "common/distributions.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"

namespace svt {
namespace {

TEST(LaplaceTest, PdfSymmetricAroundMu) {
  Laplace d(2.0, 1.5);
  EXPECT_DOUBLE_EQ(d.Pdf(2.0 + 0.7), d.Pdf(2.0 - 0.7));
  EXPECT_DOUBLE_EQ(d.Pdf(2.0), 0.5 / 1.5);
}

TEST(LaplaceTest, PdfIntegratesToOneCoarsely) {
  Laplace d(0.0, 1.0);
  double sum = 0.0;
  const double h = 0.001;
  for (double x = -30.0; x < 30.0; x += h) sum += d.Pdf(x + h / 2) * h;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(LaplaceTest, CdfKnownValues) {
  Laplace d(0.0, 1.0);
  EXPECT_DOUBLE_EQ(d.Cdf(0.0), 0.5);
  EXPECT_NEAR(d.Cdf(1.0), 1.0 - 0.5 * std::exp(-1.0), 1e-15);
  EXPECT_NEAR(d.Cdf(-1.0), 0.5 * std::exp(-1.0), 1e-15);
}

TEST(LaplaceTest, CdfSfSumToOne) {
  Laplace d(1.0, 3.0);
  for (double x : {-10.0, -1.0, 0.0, 0.5, 1.0, 2.0, 20.0}) {
    EXPECT_NEAR(d.Cdf(x) + d.Sf(x), 1.0, 1e-15) << "x=" << x;
  }
}

TEST(LaplaceTest, LogCdfMatchesLogOfCdf) {
  Laplace d(0.0, 2.0);
  for (double x : {-5.0, -0.1, 0.0, 0.1, 3.0}) {
    EXPECT_NEAR(d.LogCdf(x), std::log(d.Cdf(x)), 1e-12) << "x=" << x;
    EXPECT_NEAR(d.LogSf(x), std::log(d.Sf(x)), 1e-12) << "x=" << x;
  }
}

TEST(LaplaceTest, LogCdfStableInDeepTail) {
  Laplace d(0.0, 1.0);
  // Cdf(-800) underflows to 0, but LogCdf must stay finite and exact.
  EXPECT_NEAR(d.LogCdf(-800.0), std::log(0.5) - 800.0, 1e-9);
  EXPECT_NEAR(d.LogSf(800.0), std::log(0.5) - 800.0, 1e-9);
}

TEST(LaplaceTest, QuantileInvertsCdf) {
  Laplace d(-1.0, 0.7);
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(d.Cdf(d.Quantile(p)), p, 1e-12) << "p=" << p;
  }
}

TEST(LaplaceTest, StddevIsSqrt2TimesScale) {
  EXPECT_DOUBLE_EQ(Laplace::Centered(3.0).stddev(), std::sqrt(2.0) * 3.0);
}

// The key DP property: Pr[ρ = z] <= e^eps * Pr[ρ = z + Δ] for scale Δ/eps.
TEST(LaplaceTest, DensityRatioBoundedByShift) {
  const double sensitivity = 1.0;
  const double epsilon = 0.4;
  Laplace d(0.0, sensitivity / epsilon);
  for (double z = -20.0; z <= 20.0; z += 0.37) {
    const double ratio = d.Pdf(z) / d.Pdf(z + sensitivity);
    EXPECT_LE(ratio, std::exp(epsilon) * (1.0 + 1e-12)) << "z=" << z;
  }
}

TEST(LaplaceSampleTest, MomentsMatch) {
  Rng rng(1);
  Laplace d(5.0, 2.0);
  RunningStats stats;
  for (int i = 0; i < 400000; ++i) stats.Add(d.Sample(rng));
  EXPECT_NEAR(stats.mean(), 5.0, 0.03);
  // Var = 2 b^2 = 8.
  EXPECT_NEAR(stats.variance(), 8.0, 0.15);
}

TEST(LaplaceSampleTest, EmpiricalCdfMatchesAnalytic) {
  Rng rng(2);
  Laplace d(0.0, 1.0);
  const int n = 200000;
  std::vector<double> samples(n);
  for (double& s : samples) s = d.Sample(rng);
  for (double x : {-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0}) {
    int below = 0;
    for (double s : samples) below += (s <= x) ? 1 : 0;
    EXPECT_NEAR(below / static_cast<double>(n), d.Cdf(x), 0.005)
        << "x=" << x;
  }
}

TEST(LaplaceSampleTest, SampleLaplaceHelperIsCentered) {
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(SampleLaplace(rng, 1.0));
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
}

TEST(ExponentialTest, CdfQuantileRoundTrip) {
  Exponential d(2.5);
  for (double p : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(d.Cdf(d.Quantile(p)), p, 1e-12);
  }
}

TEST(ExponentialTest, PdfZeroBelowOrigin) {
  Exponential d(1.0);
  EXPECT_EQ(d.Pdf(-0.5), 0.0);
  EXPECT_EQ(d.Cdf(-0.5), 0.0);
}

TEST(ExponentialTest, FromScaleRoundTripsTheScale) {
  // FromScale stores the scale exactly — no 1/(1/b) reciprocal round-trip —
  // so the engine's "multiply by the stored scale" sampling is exact in b.
  for (double b : {1.0, 2.5, 0.3, 1e-3, 7.0}) {
    EXPECT_EQ(Exponential::FromScale(b).scale(), b);
  }
}

TEST(ExponentialTest, LogFunctionsMatchAnalyticForms) {
  const Exponential d = Exponential::FromScale(2.0);  // rate 0.5
  // Support boundary and interior, vs the analytic pdf/cdf/sf in log space.
  EXPECT_EQ(d.LogPdf(-1.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(d.LogCdf(-1.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(d.Sf(-1.0), 1.0);
  EXPECT_EQ(d.LogSf(-1.0), 0.0);
  for (double x : {0.0, 0.01, 0.5, 1.0, 3.0, 50.0, 800.0}) {
    EXPECT_NEAR(d.LogPdf(x), std::log(0.5) - 0.5 * x, 1e-12) << x;
    EXPECT_EQ(d.LogSf(x), -0.5 * x) << x;
    if (x > 0.0) {
      EXPECT_NEAR(d.LogCdf(x), std::log1p(-std::exp(-0.5 * x)), 1e-12) << x;
    }
  }
  // Deep tail: LogCdf of a large x is ~ -exp(-rate·x), not 0 or -inf.
  EXPECT_LT(d.LogCdf(100.0), 0.0);
  EXPECT_GT(d.LogCdf(100.0), -1e-20);
}

TEST(ExponentialTest, SampleMeanIsInverseRate) {
  Rng rng(4);
  Exponential d(4.0);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(d.Sample(rng));
  EXPECT_NEAR(stats.mean(), 0.25, 0.005);
}

TEST(GumbelTest, CdfQuantileRoundTrip) {
  Gumbel g;
  for (double p : {0.01, 0.3, 0.5, 0.8, 0.99}) {
    EXPECT_NEAR(g.Cdf(g.Quantile(p)), p, 1e-12);
  }
}

TEST(GumbelTest, SampleMeanIsEulerGamma) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 300000; ++i) stats.Add(SampleGumbel(rng));
  EXPECT_NEAR(stats.mean(), 0.5772156649, 0.01);
  // Var = pi^2/6.
  EXPECT_NEAR(stats.variance(), 1.6449, 0.05);
}

// Gumbel-max trick: argmax(logit_i + G_i) samples the softmax exactly.
TEST(GumbelTest, GumbelMaxSamplesSoftmax) {
  Rng rng(6);
  const std::vector<double> logits = {0.0, std::log(2.0), std::log(3.0)};
  // Softmax = (1/6, 2/6, 3/6).
  std::vector<int> counts(3, 0);
  const int n = 120000;
  for (int i = 0; i < n; ++i) {
    int best = 0;
    double best_key = -1e300;
    for (int j = 0; j < 3; ++j) {
      const double key = logits[j] + SampleGumbel(rng);
      if (key > best_key) {
        best_key = key;
        best = j;
      }
    }
    ++counts[best];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 1.0 / 6.0, 0.006);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 2.0 / 6.0, 0.006);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 3.0 / 6.0, 0.006);
}

TEST(AliasSamplerTest, MatchesWeights) {
  Rng rng(7);
  AliasSampler sampler({1.0, 2.0, 3.0, 4.0});
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(rng)];
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), (k + 1) / 10.0, 0.006);
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  Rng rng(8);
  AliasSampler sampler({0.0, 1.0, 0.0, 1.0});
  for (int i = 0; i < 20000; ++i) {
    const uint32_t s = sampler.Sample(rng);
    ASSERT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasSamplerTest, SingleWeight) {
  Rng rng(9);
  AliasSampler sampler({5.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(AliasSamplerTest, ProbabilityAccessorNormalizes) {
  AliasSampler sampler({2.0, 6.0});
  EXPECT_DOUBLE_EQ(sampler.Probability(0), 0.25);
  EXPECT_DOUBLE_EQ(sampler.Probability(1), 0.75);
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler z(100, 1.0);
  double total = 0.0;
  for (uint32_t k = 1; k <= 100; ++k) total += z.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfSamplerTest, RankOneMostLikely) {
  ZipfSampler z(50, 1.2);
  for (uint32_t k = 2; k <= 50; ++k) {
    EXPECT_GT(z.Pmf(1), z.Pmf(k));
  }
}

TEST(ZipfSamplerTest, UniformWhenExponentZero) {
  ZipfSampler z(10, 0.0);
  for (uint32_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(z.Pmf(k), 0.1, 1e-12);
  }
}

TEST(ZipfSamplerTest, EmpiricalFrequenciesMatchPmf) {
  Rng rng(10);
  ZipfSampler z(20, 1.0);
  std::vector<int> counts(21, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(rng)];
  for (uint32_t k = 1; k <= 20; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), z.Pmf(k), 0.005);
  }
}

using ScaleParam = double;
class LaplaceScaleSweep : public ::testing::TestWithParam<ScaleParam> {};

// Property sweep: for every scale, sampling moments and tail masses match
// the analytic distribution.
TEST_P(LaplaceScaleSweep, SampleQuantilesMatch) {
  const double scale = GetParam();
  Rng rng(static_cast<uint64_t>(scale * 1000) + 17);
  Laplace d(0.0, scale);
  const int n = 80000;
  std::vector<double> samples(n);
  for (double& s : samples) s = d.Sample(rng);
  std::sort(samples.begin(), samples.end());
  for (double p : {0.1, 0.5, 0.9}) {
    const double empirical = samples[static_cast<size_t>(p * n)];
    const double expected = d.Quantile(p);
    EXPECT_NEAR(empirical, expected, 0.05 * scale + 0.02)
        << "scale=" << scale << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, LaplaceScaleSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 4.0, 25.0, 400.0));

}  // namespace
}  // namespace svt
