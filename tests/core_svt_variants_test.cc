#include "core/svt_variants.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace svt {
namespace {

TEST(DworkRothSvtTest, RespectsCutoff) {
  Rng rng(1);
  auto mech = DworkRothSvt::Create(10.0, 1.0, 3, &rng).value();
  int positives = 0;
  for (int i = 0; i < 500 && !mech->exhausted(); ++i) {
    if (mech->Process(1e9, 0.0).is_positive()) ++positives;
  }
  EXPECT_EQ(positives, 3);
}

TEST(DworkRothSvtTest, ResamplesThresholdAfterPositive) {
  // Indirect but deterministic evidence of resampling: with a shared seed,
  // a variant that resamples consumes more RNG draws after a positive than
  // one that does not, so subsequent outputs diverge from a non-resampling
  // spec with identical scales.
  VariantSpec resample = MakeAlg2Spec(1.0, 1.0, 5);
  VariantSpec no_resample = resample;
  no_resample.resample_rho_after_positive = false;

  int diverged = 0;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    Rng rng_a(seed), rng_b(seed);
    CustomSvt a(resample, &rng_a);
    CustomSvt b(no_resample, &rng_b);
    std::string pattern_a, pattern_b;
    for (int i = 0; i < 40; ++i) {
      if (a.exhausted() || b.exhausted()) break;
      pattern_a += a.Process(i % 2 ? 50.0 : -50.0, 0.0).is_positive() ? 'T'
                                                                      : '_';
      pattern_b += b.Process(i % 2 ? 50.0 : -50.0, 0.0).is_positive() ? 'T'
                                                                      : '_';
    }
    if (pattern_a != pattern_b) ++diverged;
  }
  EXPECT_GT(diverged, 0);
}

TEST(RothNotesSvtTest, PositivesCarryNoisyValue) {
  Rng rng(2);
  auto mech = RothNotesSvt::Create(10.0, 1.0, 5, &rng).value();
  int numeric = 0;
  for (int i = 0; i < 100 && !mech->exhausted(); ++i) {
    const Response r = mech->Process(1000.0, 0.0);
    if (r.is_positive()) {
      ASSERT_EQ(r.outcome, Outcome::kAboveValue);
      // Value is q + ν with ν ~ Lap(cΔ/ε2) = Lap(1); must be near q.
      EXPECT_NEAR(r.value, 1000.0, 60.0);
      ++numeric;
    }
  }
  EXPECT_GT(numeric, 0);
}

TEST(RothNotesSvtTest, EmittedValueExceedsNoisyThresholdImplicitly) {
  // The emitted value is the same noisy answer that won the comparison, so
  // it can never be smaller than (T + rho) at emission time. We can't see
  // rho directly, but emitted values must all exceed the threshold minus
  // the maximum plausible |rho| — a smoke check that the comparison noise
  // is reused rather than redrawn.
  Rng rng(3);
  VariantSpec spec = MakeAlg3Spec(1.0, 1.0, 1);
  for (int trial = 0; trial < 200; ++trial) {
    CustomSvt mech(spec, &rng);
    // Answer far above: positive on the first query almost surely.
    const Response r = mech.Process(1000.0, 999.0);
    if (r.is_positive()) {
      // value = 1000 + nu; threshold 999 + rho. value >= 999 + rho always.
      EXPECT_GT(r.value, 999.0 - 200.0);
    }
  }
}

TEST(LeeCliftonSvtTest, CutoffHolds) {
  Rng rng(4);
  auto mech = LeeCliftonSvt::Create(1.0, 1.0, 2, &rng).value();
  int positives = 0;
  for (int i = 0; i < 100 && !mech->exhausted(); ++i) {
    if (mech->Process(1e9, 0.0).is_positive()) ++positives;
  }
  EXPECT_EQ(positives, 2);
}

TEST(LeeCliftonSvtTest, MonotonicFlagChangesClaimOnly) {
  Rng rng(5);
  auto gen = LeeCliftonSvt::Create(1.0, 1.0, 5, &rng, false).value();
  auto mono = LeeCliftonSvt::Create(1.0, 1.0, 5, &rng, true).value();
  EXPECT_DOUBLE_EQ(gen->spec().nu_scale, mono->spec().nu_scale);
  EXPECT_NE(gen->spec().privacy_scale_factor,
            mono->spec().privacy_scale_factor);
}

TEST(StoddardSvtTest, NeverExhaustsAndAddsNoQueryNoise) {
  Rng rng(6);
  auto mech = StoddardSvt::Create(1.0, 1.0, &rng).value();
  // ν = 0: answers far from the (noisy) threshold behave deterministically
  // given rho; with answer >> any plausible rho, every output is ⊤.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_FALSE(mech->exhausted());
    ASSERT_TRUE(mech->Process(1e9, 0.0).is_positive());
  }
  EXPECT_EQ(mech->positives_emitted(), 1000);
}

TEST(StoddardSvtTest, OutputIsDeterministicGivenThresholdNoise) {
  // With ν = 0 the entire output vector is a deterministic function of rho:
  // outputs for the same query can never flip within one run.
  Rng rng(7);
  auto mech = StoddardSvt::Create(1.0, 1.0, &rng).value();
  const Response first = mech->Process(0.123, 0.0);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(mech->Process(0.123, 0.0).is_positive(), first.is_positive());
  }
}

TEST(ChenSvtTest, NoCutoffUnlimitedPositives) {
  Rng rng(8);
  auto mech = ChenSvt::Create(1.0, 1.0, &rng).value();
  int positives = 0;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_FALSE(mech->exhausted());
    if (mech->Process(1e9, 0.0).is_positive()) ++positives;
  }
  EXPECT_EQ(positives, 2000);
}

TEST(GpttTest, GeneralizesAlg6) {
  Rng rng(9);
  auto gptt = Gptt::Create(0.5, 0.5, 1.0, &rng).value();
  EXPECT_DOUBLE_EQ(gptt->spec().rho_scale, 2.0);
  EXPECT_DOUBLE_EQ(gptt->spec().nu_scale, 2.0);
  EXPECT_FALSE(gptt->spec().cutoff.has_value());

  auto skewed = Gptt::Create(0.9, 0.1, 1.0, &rng).value();
  EXPECT_NEAR(skewed->spec().rho_scale, 1.0 / 0.9, 1e-12);
  EXPECT_NEAR(skewed->spec().nu_scale, 10.0, 1e-12);
}

TEST(VariantFactoryTest, AllIdsConstruct) {
  Rng rng(10);
  for (VariantId id : {VariantId::kAlg1, VariantId::kAlg2, VariantId::kAlg3,
                       VariantId::kAlg4, VariantId::kAlg5, VariantId::kAlg6,
                       VariantId::kStandard, VariantId::kGptt,
                       VariantId::kExpNoise, VariantId::kRevisited}) {
    auto mech = MakeVariantMechanism(id, 1.0, 1.0, 3, &rng);
    ASSERT_TRUE(mech.ok()) << VariantIdToString(id);
    // Every mechanism can process a query.
    (*mech)->Process(0.0, 0.0);
    EXPECT_EQ((*mech)->queries_processed(), 1);
  }
}

TEST(VariantFactoryTest, RejectsBadArgs) {
  Rng rng(11);
  EXPECT_FALSE(MakeVariantMechanism(VariantId::kAlg1, -1.0, 1.0, 3, &rng).ok());
  EXPECT_FALSE(MakeVariantMechanism(VariantId::kAlg2, 1.0, 0.0, 3, &rng).ok());
  EXPECT_FALSE(MakeVariantMechanism(VariantId::kAlg3, 1.0, 1.0, 0, &rng).ok());
  EXPECT_FALSE(
      MakeVariantMechanism(VariantId::kAlg1, 1.0, 1.0, 3, nullptr).ok());
}

TEST(CustomSvtTest, RunsArbitrarySpec) {
  Rng rng(12);
  VariantSpec spec = MakeAlg1Spec(2.0, 1.0, 2);
  CustomSvt mech(spec, &rng);
  const std::vector<double> answers = {100.0, -100.0, 100.0, 100.0};
  const std::vector<Response> rs = mech.Run(answers, 0.0);
  int positives = 0;
  for (const Response& r : rs) positives += r.is_positive() ? 1 : 0;
  EXPECT_LE(positives, 2);
}

TEST(CustomSvtTest, ResetRedrawsThreshold) {
  Rng rng(13);
  VariantSpec spec = MakeAlg5Spec(1.0, 1.0);  // ν = 0: output reveals rho side
  CustomSvt mech(spec, &rng);
  // For answer 0 and threshold 0, output is ⊤ iff 0 >= rho, i.e. rho <= 0:
  // a fair coin across resets. Both outcomes must occur over many resets.
  int positives = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    positives += mech.Process(0.0, 0.0).is_positive() ? 1 : 0;
    mech.Reset();
  }
  EXPECT_GT(positives, trials / 3);
  EXPECT_LT(positives, 2 * trials / 3);
}

class AllVariantsSweep : public ::testing::TestWithParam<VariantId> {};

TEST_P(AllVariantsSweep, DeterministicGivenSeed) {
  const VariantId id = GetParam();
  const std::vector<double> answers = {3.0, -5.0, 11.0, 0.5, -2.0, 8.0};
  Rng rng1(77), rng2(77);
  auto m1 = MakeVariantMechanism(id, 0.7, 1.0, 2, &rng1).value();
  auto m2 = MakeVariantMechanism(id, 0.7, 1.0, 2, &rng2).value();
  EXPECT_EQ(ToString(m1->Run(answers, 1.0)), ToString(m2->Run(answers, 1.0)));
}

TEST_P(AllVariantsSweep, ResetZeroesCounters) {
  const VariantId id = GetParam();
  Rng rng(78);
  auto mech = MakeVariantMechanism(id, 0.7, 1.0, 2, &rng).value();
  mech->Process(10.0, 0.0);
  mech->Reset();
  EXPECT_EQ(mech->queries_processed(), 0);
  EXPECT_EQ(mech->positives_emitted(), 0);
  EXPECT_FALSE(mech->exhausted());
}

INSTANTIATE_TEST_SUITE_P(
    Variants, AllVariantsSweep,
    ::testing::Values(VariantId::kAlg1, VariantId::kAlg2, VariantId::kAlg3,
                      VariantId::kAlg4, VariantId::kAlg5, VariantId::kAlg6,
                      VariantId::kStandard, VariantId::kGptt,
                      VariantId::kExpNoise, VariantId::kRevisited));

TEST(ExpNoiseSvtTest, SpecMatchesLiuParameterization) {
  Rng rng(14);
  auto mech = ExpNoiseSvt::Create(1.0, 1.0, 4, &rng).value();
  const VariantSpec& spec = mech->spec();
  EXPECT_EQ(spec.rho_kind, NoiseKind::kExponential);
  EXPECT_EQ(spec.nu_kind, NoiseKind::kLaplace);
  EXPECT_DOUBLE_EQ(spec.rho_scale, 2.0);       // Δ/ε₁ = 1/(ε/2)
  EXPECT_DOUBLE_EQ(spec.nu_scale, 16.0);       // 2cΔ/ε₂ = 8/(ε/2)
  EXPECT_FALSE(spec.resample_rho_after_positive);
  ASSERT_TRUE(spec.cutoff.has_value());
  EXPECT_EQ(*spec.cutoff, 4);
  EXPECT_EQ(spec.actual_privacy, PrivacyClass::kPureDp);
}

TEST(ExpNoiseSvtTest, RespectsCutoff) {
  Rng rng(15);
  auto mech = ExpNoiseSvt::Create(10.0, 1.0, 3, &rng).value();
  int positives = 0;
  for (int i = 0; i < 500 && !mech->exhausted(); ++i) {
    if (mech->Process(1e9, 0.0).is_positive()) ++positives;
  }
  EXPECT_EQ(positives, 3);
}

TEST(RevisitedSvtTest, SpecMatchesMonitorParameterization) {
  Rng rng(16);
  auto mech = RevisitedSvt::Create(1.0, 1.0, 4, &rng).value();
  const VariantSpec& spec = mech->spec();
  EXPECT_EQ(spec.rho_kind, NoiseKind::kExponential);
  EXPECT_EQ(spec.nu_kind, NoiseKind::kExponential);
  EXPECT_DOUBLE_EQ(spec.rho_scale, 8.0);       // cΔ/ε₁ = 4/(ε/2)
  EXPECT_DOUBLE_EQ(spec.nu_scale, 16.0);       // 2cΔ/ε₂
  EXPECT_TRUE(spec.resample_rho_after_positive);
  EXPECT_DOUBLE_EQ(spec.rho_resample_scale, spec.rho_scale);
  EXPECT_EQ(spec.actual_privacy, PrivacyClass::kPureDp);
}

TEST(ExpNoiseSvtTest, ThresholdNoiseIsOneSided) {
  // ρ ~ Exp(b) ≥ 0 means an answer exactly at the threshold can only fire
  // when ν ≥ ρ — unlike the Laplace variants, where ρ < 0 half the time.
  // Observable consequence: with ν's scale tiny relative to ρ's, answers
  // slightly below the threshold essentially never fire.
  int fired = 0;
  for (uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed);
    // ε large → tiny ν scale relative to the probe offset below.
    auto mech = ExpNoiseSvt::Create(20.0, 1.0, 1, &rng).value();
    if (mech->Process(-5.0, 0.0).is_positive()) ++fired;
  }
  // Pr[ν − ρ ≥ 5] with ν ~ Lap(0.2), ρ ~ Exp(0.1): ~e^{-25}, never fires.
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace svt
