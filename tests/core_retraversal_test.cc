#include "core/svt_retraversal.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace svt {
namespace {

RetraversalOptions BasicOptions(int c, double boost_devs) {
  RetraversalOptions o;
  o.svt.epsilon = 1.0;
  o.svt.sensitivity = 1.0;
  o.svt.cutoff = c;
  o.svt.monotonic = true;
  o.svt.allocation = BudgetAllocation::Optimal(c, /*monotonic=*/true);
  o.threshold_boost_devs = boost_devs;
  return o;
}

TEST(RetraversalOptionsTest, Validation) {
  RetraversalOptions o = BasicOptions(3, 1.0);
  EXPECT_TRUE(o.Validate().ok());
  o.threshold_boost_devs = -1.0;
  EXPECT_FALSE(o.Validate().ok());
  o = BasicOptions(3, 1.0);
  o.max_passes = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = BasicOptions(3, 1.0);
  o.svt.epsilon = 0.0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(RetraversalTest, SelectsAtMostC) {
  Rng rng(1);
  const std::vector<double> scores(100, 1000.0);
  const auto result =
      SelectWithRetraversal(scores, 0.0, BasicOptions(7, 0.0), rng).value();
  EXPECT_EQ(result.selected.size(), 7u);
}

TEST(RetraversalTest, SelectionsAreDistinctIndices) {
  Rng rng(2);
  std::vector<double> scores(50);
  for (int i = 0; i < 50; ++i) scores[i] = 100.0 - i;
  const auto result =
      SelectWithRetraversal(scores, 50.0, BasicOptions(10, 1.0), rng).value();
  std::set<size_t> unique(result.selected.begin(), result.selected.end());
  EXPECT_EQ(unique.size(), result.selected.size());
}

TEST(RetraversalTest, RetraversesWhenFirstPassFindsTooFew) {
  Rng rng(3);
  // All scores just below a highly-boosted threshold: the first pass will
  // select almost nothing, but subsequent passes with fresh noise
  // eventually find c (noise is unbounded).
  const std::vector<double> scores(40, 10.0);
  RetraversalOptions o = BasicOptions(5, 0.0);
  o.svt.epsilon = 5.0;  // moderate noise
  o.max_passes = 10000;
  const auto result = SelectWithRetraversal(scores, 11.0, o, rng).value();
  EXPECT_EQ(result.selected.size(), 5u);
  EXPECT_GE(result.passes_used, 1);
}

TEST(RetraversalTest, BoostRaisesEffectiveThreshold) {
  Rng rng(4);
  const std::vector<double> scores(10, 0.0);
  const auto r0 =
      SelectWithRetraversal(scores, 5.0, BasicOptions(2, 0.0), rng).value();
  const auto r5 =
      SelectWithRetraversal(scores, 5.0, BasicOptions(2, 5.0), rng).value();
  EXPECT_DOUBLE_EQ(r0.boosted_threshold, 5.0);
  EXPECT_GT(r5.boosted_threshold, 5.0);
}

TEST(RetraversalTest, MaxPassesCapsWork) {
  Rng rng(5);
  // Scores absurdly below threshold: selection nearly impossible, so the
  // cap must kick in rather than looping forever.
  const std::vector<double> scores(20, -1e7);
  RetraversalOptions o = BasicOptions(3, 0.0);
  o.max_passes = 4;
  const auto result = SelectWithRetraversal(scores, 0.0, o, rng).value();
  EXPECT_LE(result.passes_used, 4);
  EXPECT_TRUE(result.selected.empty());
}

TEST(RetraversalTest, ComparisonsAccounted) {
  Rng rng(6);
  const std::vector<double> scores(30, 1e9);
  const auto result =
      SelectWithRetraversal(scores, 0.0, BasicOptions(3, 0.0), rng).value();
  // Selecting 3 from overwhelming scores takes exactly 3 comparisons.
  EXPECT_EQ(result.comparisons, 3);
  EXPECT_EQ(result.passes_used, 1);
}

TEST(RetraversalTest, DeterministicGivenSeed) {
  const std::vector<double> scores = {10.0, 9.0, 8.0, 7.0, 6.0,
                                      5.0,  4.0, 3.0, 2.0, 1.0};
  Rng rng1(7), rng2(7);
  const auto r1 =
      SelectWithRetraversal(scores, 6.5, BasicOptions(3, 1.0), rng1).value();
  const auto r2 =
      SelectWithRetraversal(scores, 6.5, BasicOptions(3, 1.0), rng2).value();
  EXPECT_EQ(r1.selected, r2.selected);
  EXPECT_EQ(r1.passes_used, r2.passes_used);
}

TEST(RetraversalTest, PrefersHighScores) {
  // 5 high scores, 45 much lower ones; with a tight budget the high scores
  // should dominate the selection across repetitions.
  std::vector<double> scores(50, 10.0);
  for (int i = 0; i < 5; ++i) scores[i] = 1000.0;
  Rng rng(8);
  int high_hits = 0, total = 0;
  for (int rep = 0; rep < 200; ++rep) {
    const auto result =
        SelectWithRetraversal(scores, 500.0, BasicOptions(5, 1.0), rng)
            .value();
    for (size_t idx : result.selected) {
      ++total;
      if (idx < 5) ++high_hits;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(high_hits / static_cast<double>(total), 0.9);
}

class BoostSweep : public ::testing::TestWithParam<double> {};

TEST_P(BoostSweep, AlwaysTerminatesWithinCap) {
  Rng rng(42 + static_cast<uint64_t>(GetParam()));
  std::vector<double> scores(200);
  for (int i = 0; i < 200; ++i) scores[i] = 200.0 - i;
  RetraversalOptions o = BasicOptions(20, GetParam());
  o.max_passes = 64;
  const auto result = SelectWithRetraversal(scores, 180.0, o, rng).value();
  EXPECT_LE(result.passes_used, 64);
  EXPECT_LE(result.selected.size(), 20u);
}

INSTANTIATE_TEST_SUITE_P(Boosts, BoostSweep,
                         ::testing::Values(0.0, 1.0, 2.0, 3.0, 4.0, 5.0));

}  // namespace
}  // namespace svt
