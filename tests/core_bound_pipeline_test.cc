// BoundPipeline / BoundPrefilter conservativeness and equivalence.
//
// The quantized prefilter level is licensed by two claims (proofs in
// data/bound_prefilter.h and core/bound_pipeline.h):
//   1. per element, the dequantized code bounds the value from the
//      pessimistic side (scores from above, bars from below) — so the
//      quantized level can never prune a span the full-precision bound
//      keeps, and
//   2. codes are bound-only — so engine output is bit-identical with the
//      prefilter attached, absent, or disabled, at every dispatch level,
//      in both kernel modes, for both noise kinds.
// This file attacks both with adversarial value sets: subnormals,
// near-threshold ties, max-magnitude deltas, infinities, and (at the
// prefilter unit level, where no NaN-unaware vector reduction is in the
// loop) NaN.

#include "core/bound_pipeline.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/vecmath.h"
#include "core/batch_runner.h"
#include "core/response.h"
#include "core/svt.h"
#include "data/bound_prefilter.h"
#include "data/score_vector.h"
#include "dispatch_test_util.h"

namespace svt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Restores the prefilter gate on scope exit, mirroring ScopedDispatchLevel.
class ScopedPrefilterGate {
 public:
  ScopedPrefilterGate() : saved_(BoundPrefilterEnabled()) {}
  ~ScopedPrefilterGate() { SetBoundPrefilterEnabled(saved_); }

 private:
  bool saved_;
};

// Adversarial value pools. `Boundary` values are spliced into otherwise
// random vectors so every span mixes regimes.
std::vector<double> BoundaryValues(double center) {
  return {
      center,                                  // exact tie
      std::nextafter(center, -kInf),           // one ulp under
      std::nextafter(center, kInf),            // one ulp over
      center - 1e-300,                         // tiny delta
      5e-324,                                  // smallest subnormal
      -5e-324,
      1e-308,                                  // near DBL_MIN
      0.0,
      -0.0,
      std::numeric_limits<double>::max(),      // max-magnitude deltas
      -std::numeric_limits<double>::max(),
      1e15,                                    // big integers (u8/u16 edges)
      -1e15,
  };
}

std::vector<double> AdversarialVector(size_t n, double center, double spread,
                                      uint64_t seed, bool with_inf,
                                      bool with_nan) {
  std::vector<double> v(n);
  Rng gen(seed);
  for (double& x : v) x = center + (gen.NextDouble() - 0.5) * spread;
  const std::vector<double> boundary = BoundaryValues(center);
  for (size_t i = 0; i < n; i += 37) {
    v[i] = boundary[(i / 37) % boundary.size()];
  }
  if (with_inf && n >= 200) {
    v[n / 2] = kInf;
    v[n / 2 + 1] = -kInf;
  }
  if (with_nan && n >= 100) v[n / 3] = kNaN;
  return v;
}

// Exact span extrema computed scalar-style, skipping NaN — the reference
// the quantized reductions must dominate.
double ExactMaxSkipNaN(std::span<const double> v) {
  double m = -kInf;
  for (double x : v) {
    if (!std::isnan(x)) m = std::max(m, x);
  }
  return m;
}

double ExactMinSkipNaN(std::span<const double> v) {
  double m = kInf;
  for (double x : v) {
    if (!std::isnan(x)) m = std::min(m, x);
  }
  return m;
}

TEST(BoundPrefilterTest, ScoreUpperDominatesEveryElement) {
  // Per-element and per-span: the dequantized bound must sit at or above
  // every non-NaN element, over randomized + boundary vectors at several
  // centers/spreads — including NaN in the array (the prefilter's own
  // reductions are NaN-aware by construction: NaN scores get code 0).
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (double spread : {1.0, 1e-12, 1e8, 1e300}) {
      const std::vector<double> a =
          AdversarialVector(1000, -3.0, spread, seed, /*with_inf=*/true,
                            /*with_nan=*/true);
      const BoundPrefilter pf = BoundPrefilter::Build(a);
      for (size_t i = 0; i < a.size(); ++i) {
        if (std::isnan(a[i])) continue;
        ASSERT_GE(pf.ScoreUpper(i, 1), a[i])
            << "seed=" << seed << " spread=" << spread << " i=" << i;
      }
      for (size_t s = 0; s < a.size(); s += 128) {
        const size_t m = std::min<size_t>(128, a.size() - s);
        ASSERT_GE(pf.ScoreUpper(s, m),
                  ExactMaxSkipNaN({a.data() + s, m}))
            << "span at " << s;
      }
    }
  }
}

TEST(BoundPrefilterTest, BarLowerDominatedByEveryElement) {
  for (uint64_t seed : {4u, 5u, 6u}) {
    for (double spread : {1.0, 1e-12, 1e8, 1e300}) {
      const std::vector<double> a =
          AdversarialVector(1000, -3.0, spread, seed, true, true);
      const std::vector<double> t =
          AdversarialVector(1000, 0.25, spread, seed + 100, true, true);
      const BoundPrefilter pf = BoundPrefilter::Build(a, t);
      for (size_t i = 0; i < t.size(); ++i) {
        if (std::isnan(t[i])) continue;
        ASSERT_LE(pf.BarLower(i, 1), t[i])
            << "seed=" << seed << " spread=" << spread << " i=" << i;
      }
      for (size_t s = 0; s < t.size(); s += 128) {
        const size_t m = std::min<size_t>(128, t.size() - s);
        ASSERT_LE(pf.BarLower(s, m), ExactMinSkipNaN({t.data() + s, m}))
            << "span at " << s;
      }
    }
  }
}

TEST(BoundPrefilterTest, QuantizedNeverPrunesWhatExactKeeps) {
  // The engine prunes a span iff fl(up + NB) < bar; correctly-rounded add
  // is monotone in `up`, so quantized-prunes ⊆ exact-prunes follows from
  // up_quant >= up_exact per span (and dually dn_quant <= dn_exact). This
  // asserts exactly that dominance on adversarial spans — the direct
  // prerequisite of "the quantized level never prunes a span the
  // full-precision bound keeps", with no noise realization needed.
  for (uint64_t seed : {7u, 8u}) {
    const std::vector<double> a =
        AdversarialVector(4096, -6.0, 2.0, seed, true, false);
    const std::vector<double> t =
        AdversarialVector(4096, 0.0, 2.0, seed + 1, true, false);
    const BoundPrefilter pf = BoundPrefilter::Build(a, t);
    for (size_t s = 0; s < a.size(); s += 128) {
      const size_t m = std::min<size_t>(128, a.size() - s);
      ASSERT_GE(pf.ScoreUpper(s, m), vec::MaxBlock({a.data() + s, m}));
      ASSERT_LE(pf.BarLower(s, m), vec::MinBlock({t.data() + s, m}));
    }
  }
}

TEST(BoundPrefilterTest, SentinelsAndWidthSelection) {
  // +inf scores land on the sentinel and poison only their own span.
  {
    std::vector<double> a(256, 1.0);
    a[7] = kInf;
    const BoundPrefilter pf = BoundPrefilter::Build(a);
    EXPECT_EQ(pf.ScoreUpper(0, 128), kInf);
    EXPECT_LT(pf.ScoreUpper(128, 128), kInf);
  }
  // -inf bars land on the bar sentinel; NaN bars never deflate a span.
  {
    const std::vector<double> a(256, 1.0);
    std::vector<double> t(256, 5.0);
    t[3] = -kInf;
    t[200] = kNaN;
    const BoundPrefilter pf = BoundPrefilter::Build(a, t);
    EXPECT_EQ(pf.BarLower(0, 128), -kInf);
    const double dn = pf.BarLower(128, 128);
    EXPECT_GT(dn, -kInf);
    EXPECT_LE(dn, 5.0);
  }
  // Small-range integer vectors embed exactly in uint8 (1 byte/element);
  // fractional or wide ranges take uint16.
  {
    std::vector<double> small(300);
    for (size_t i = 0; i < small.size(); ++i) {
      small[i] = static_cast<double>(i % 200);
    }
    EXPECT_EQ(BoundPrefilter::Build(small).score_bytes_per_element(), 1u);
    std::vector<double> frac = small;
    frac[5] = 0.5;
    EXPECT_EQ(BoundPrefilter::Build(frac).score_bytes_per_element(), 2u);
    // u8 exactness: the dequantized per-element bound is the value itself.
    const BoundPrefilter pf = BoundPrefilter::Build(small);
    for (size_t i = 0; i < small.size(); ++i) {
      EXPECT_EQ(pf.ScoreUpper(i, 1), small[i]) << i;
    }
  }
}

// --- engine equivalence ----------------------------------------------------

void ExpectSameResponses(const std::vector<Response>& got,
                         const std::vector<Response>& want,
                         const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].outcome, want[i].outcome) << context << " i=" << i;
    if (got[i].outcome == Outcome::kAboveValue) {
      ASSERT_EQ(got[i].value, want[i].value) << context << " i=" << i;
    }
  }
}

std::vector<double> NearThresholdAnswers(size_t n, double nu_scale,
                                         uint64_t seed) {
  std::vector<double> answers(n);
  Rng gen(seed);
  for (double& a : answers) {
    a = (-6.0 + (gen.NextDouble() - 0.5)) * nu_scale;
  }
  // Boundary splices: exact bar ties and one-ulp deltas at 0.0.
  for (size_t i = 50; i < n; i += 511) {
    answers[i] = 0.0;
    if (i + 1 < n) answers[i + 1] = std::nextafter(0.0, -1.0);
  }
  return answers;
}

SvtOptions NearThresholdOptions(NoiseKind nu_kind) {
  SvtOptions o;
  o.epsilon = 0.1;
  o.cutoff = 1 << 20;
  o.monotonic = true;
  o.nu_kind = nu_kind;
  if (nu_kind == NoiseKind::kExponential) o.rho_kind = nu_kind;
  return o;
}

struct EngineRun {
  std::vector<Response> responses;
  BatchRunStats stats;
};

EngineRun RunCommon(const SvtOptions& o, const std::vector<double>& answers,
                    const BoundPrefilter* pf, uint64_t seed) {
  Rng rng(seed);
  auto mech = SparseVector::Create(o, &rng).value();
  EngineRun r;
  mech->RunAppend(answers, 0.0, pf, &r.responses);
  r.stats = mech->batch_stats();
  return r;
}

EngineRun RunPerQuery(const SvtOptions& o, const std::vector<double>& answers,
                      const std::vector<double>& thresholds,
                      const BoundPrefilter* pf, uint64_t seed) {
  Rng rng(seed);
  auto mech = SparseVector::Create(o, &rng).value();
  EngineRun r;
  mech->RunAppend(answers, thresholds, pf, &r.responses);
  r.stats = mech->batch_stats();
  return r;
}

void ExpectSameTierCounters(const BatchRunStats& a, const BatchRunStats& b,
                            const std::string& context) {
  EXPECT_EQ(a.tier1_chunks_skipped, b.tier1_chunks_skipped) << context;
  EXPECT_EQ(a.tier2_chunks_scanned, b.tier2_chunks_scanned) << context;
  EXPECT_EQ(a.tier2_spans_skipped, b.tier2_spans_skipped) << context;
  EXPECT_EQ(a.tier2_fused_segments, b.tier2_fused_segments) << context;
  EXPECT_EQ(a.tier2_fused_subblocks, b.tier2_fused_subblocks) << context;
  EXPECT_EQ(a.bound_spans_pruned_q, b.bound_spans_pruned_q) << context;
  EXPECT_EQ(a.bound_bytes_touched, b.bound_bytes_touched) << context;
}

TEST(BoundPipelineEngineTest, CommonThresholdPrefilterIsOutputNeutral) {
  // Prefilter attached vs absent vs gate-disabled: bit-identical output at
  // every dispatch level, in both kernel modes, for both noise kinds. And
  // within each prefilter setting, all seven counters are dispatch- and
  // mode-independent.
  ScopedDispatchLevel restore_level;
  ScopedPrefilterGate restore_gate;
  const size_t n = 3 * BatchRunner::kChunkSize + 321;

  for (NoiseKind nu_kind : {NoiseKind::kLaplace, NoiseKind::kExponential}) {
    const SvtOptions o = NearThresholdOptions(nu_kind);
    Rng probe(21);
    const double nu_scale =
        SparseVector::Create(o, &probe).value()->query_noise_scale();
    const std::vector<double> answers = NearThresholdAnswers(n, nu_scale, 99);
    const BoundPrefilter pf = BoundPrefilter::Build(answers);

    EngineRun reference;      // plain run, scalar megakernel
    EngineRun quant_baseline; // prefiltered run, scalar megakernel
    bool have_reference = false;
    for (BatchKernelMode mode :
         {BatchKernelMode::kMegakernel, BatchKernelMode::kComposition}) {
      SetBatchKernelMode(mode);
      for (vec::DispatchLevel level :
           {vec::DispatchLevel::kScalar, vec::DispatchLevel::kAvx2,
            vec::DispatchLevel::kAvx512}) {
        if (!vec::SetDispatchLevel(level)) continue;
        const std::string ctx =
            std::string(nu_kind == NoiseKind::kLaplace ? "lap" : "exp") +
            " mode=" + (mode == BatchKernelMode::kMegakernel ? "mega" : "comp") +
            " level=" + vec::DispatchLevelName(level);

        SetBoundPrefilterEnabled(true);
        const EngineRun plain = RunCommon(o, answers, nullptr, 21);
        const EngineRun quant = RunCommon(o, answers, &pf, 21);
        SetBoundPrefilterEnabled(false);
        const EngineRun gated = RunCommon(o, answers, &pf, 21);
        SetBoundPrefilterEnabled(true);

        ExpectSameResponses(quant.responses, plain.responses, ctx + " quant");
        ExpectSameResponses(gated.responses, plain.responses, ctx + " gated");
        // The disabled gate is full precision end to end.
        ExpectSameTierCounters(gated.stats, plain.stats, ctx + " gated");

        if (!have_reference) {
          reference = plain;
          quant_baseline = quant;
          have_reference = true;
        } else {
          ExpectSameResponses(plain.responses, reference.responses,
                              ctx + " cross");
          ExpectSameTierCounters(plain.stats, reference.stats, ctx + " plain");
          ExpectSameTierCounters(quant.stats, quant_baseline.stats,
                                 ctx + " quant");
        }
        // Prefilter engaged: quantized prunes happen and are flagged; the
        // plain run flags none.
        EXPECT_GT(quant.stats.bound_spans_pruned_q, 0) << ctx;
        EXPECT_EQ(plain.stats.bound_spans_pruned_q, 0) << ctx;
        EXPECT_GT(quant.stats.tier2_spans_skipped, 0) << ctx;
        // The quantized bound pass reads 1-2 bytes/element instead of 8.
        EXPECT_GE(plain.stats.bound_bytes_touched,
                  4 * quant.stats.bound_bytes_touched)
            << ctx;
      }
    }
  }
}

TEST(BoundPipelineEngineTest, PerQueryPrefilterIsOutputNeutral) {
  // The per-query path's new span bound: responses must stay bit-identical
  // to streaming semantics with the prefilter attached, absent, or gated
  // off, across dispatch levels, modes, and noise kinds — and the bound
  // must actually prune (tier2_spans_skipped > 0) on a workload with
  // far-below stretches.
  ScopedDispatchLevel restore_level;
  ScopedPrefilterGate restore_gate;
  const size_t n = 2 * BatchRunner::kChunkSize + 57;

  for (NoiseKind nu_kind : {NoiseKind::kLaplace, NoiseKind::kExponential}) {
    const SvtOptions o = NearThresholdOptions(nu_kind);
    Rng probe(55);
    const double nu_scale =
        SparseVector::Create(o, &probe).value()->query_noise_scale();
    std::vector<double> answers = NearThresholdAnswers(n, nu_scale, 31);
    std::vector<double> thresholds(n);
    Rng gen(77);
    for (size_t i = 0; i < n; ++i) {
      thresholds[i] = (gen.NextDouble() - 0.5) * nu_scale;
    }
    // Far-below stretches: spans the per-query bound should discharge.
    for (size_t i = BatchRunner::kChunkSize / 2;
         i < BatchRunner::kChunkSize; ++i) {
      answers[i] = -50.0 * nu_scale;
    }
    // Exact tie at a chunk boundary.
    thresholds[BatchRunner::kChunkSize] = answers[BatchRunner::kChunkSize];
    const BoundPrefilter pf = BoundPrefilter::Build(answers, thresholds);

    EngineRun reference, quant_baseline;
    bool have_reference = false;
    for (BatchKernelMode mode :
         {BatchKernelMode::kMegakernel, BatchKernelMode::kComposition}) {
      SetBatchKernelMode(mode);
      for (vec::DispatchLevel level :
           {vec::DispatchLevel::kScalar, vec::DispatchLevel::kAvx2,
            vec::DispatchLevel::kAvx512}) {
        if (!vec::SetDispatchLevel(level)) continue;
        const std::string ctx =
            std::string(nu_kind == NoiseKind::kLaplace ? "lap" : "exp") +
            " mode=" + (mode == BatchKernelMode::kMegakernel ? "mega" : "comp") +
            " level=" + vec::DispatchLevelName(level) + " per-query";

        SetBoundPrefilterEnabled(true);
        const EngineRun plain = RunPerQuery(o, answers, thresholds, nullptr, 4);
        const EngineRun quant = RunPerQuery(o, answers, thresholds, &pf, 4);
        SetBoundPrefilterEnabled(false);
        const EngineRun gated = RunPerQuery(o, answers, thresholds, &pf, 4);
        SetBoundPrefilterEnabled(true);

        ExpectSameResponses(quant.responses, plain.responses, ctx + " quant");
        ExpectSameResponses(gated.responses, plain.responses, ctx + " gated");
        ExpectSameTierCounters(gated.stats, plain.stats, ctx + " gated");

        if (!have_reference) {
          reference = plain;
          quant_baseline = quant;
          have_reference = true;
        } else {
          ExpectSameResponses(plain.responses, reference.responses,
                              ctx + " cross");
          ExpectSameTierCounters(plain.stats, reference.stats, ctx + " plain");
          ExpectSameTierCounters(quant.stats, quant_baseline.stats,
                                 ctx + " quant");
        }
        // The satellite: per-query spans are actually bounded now.
        EXPECT_GT(plain.stats.tier2_spans_skipped, 0) << ctx;
        EXPECT_GT(quant.stats.bound_spans_pruned_q, 0) << ctx;
        EXPECT_GE(plain.stats.bound_bytes_touched,
                  4 * quant.stats.bound_bytes_touched)
            << ctx;
      }
    }
  }
}

TEST(BoundPipelineEngineTest, ScoreVectorCachesItsPrefilter) {
  std::vector<double> scores(500);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = static_cast<double>(i % 100);
  }
  const ScoreVector sv(scores);
  const BoundPrefilter* pf = sv.bound_prefilter();
  ASSERT_NE(pf, nullptr);
  EXPECT_EQ(pf, sv.bound_prefilter());  // cached, built once
  EXPECT_EQ(pf->size(), sv.size());
  EXPECT_EQ(pf->score_bytes_per_element(), 1u);  // small-integer embedding
  // The companion is usable directly against the engine.
  SvtOptions o;
  o.epsilon = 1.0;
  o.cutoff = 1000;
  Rng rng_a(3), rng_b(3);
  auto with = SparseVector::Create(o, &rng_a).value();
  auto without = SparseVector::Create(o, &rng_b).value();
  std::vector<Response> out_with, out_without;
  with->RunAppend(sv.scores(), 50.0, pf, &out_with);
  without->RunAppend(sv.scores(), 50.0, &out_without);
  ExpectSameResponses(out_with, out_without, "score-vector prefilter");
}

}  // namespace
}  // namespace svt
