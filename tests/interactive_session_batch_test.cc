// Streaming-vs-batch equivalence *through sessions*: a session executing
// via RunAppend (batch engine per round, transparent round rollover, budget
// charges at round starts) must emit exactly the Response sequence of the
// pure Process() loop for the same seed — including where it stops when the
// lifetime budget runs out, for exact-fit and inexact budget schedules.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/vecmath.h"
#include "dispatch_test_util.h"
#include "interactive/session.h"

namespace svt {
namespace {

std::vector<double> MakeAnswers(size_t n) {
  Rng gen(555);
  std::vector<double> answers(n);
  for (size_t i = 0; i < n; ++i) answers[i] = gen.NextUniform(-25.0, 25.0);
  return answers;
}

SessionOptions Options(double total, double per_round) {
  SessionOptions o;
  o.total_epsilon = total;
  o.epsilon_per_round = per_round;
  o.round.sensitivity = 1.0;
  o.round.cutoff = 2;
  o.round.monotonic = true;
  // Numeric answers make the comparison bitwise on doubles, not just on
  // the ⊥/⊤ pattern.
  o.round.numeric_output_fraction = 0.2;
  return o;
}

/// Pure-streaming reference: Process() until the budget refuses.
std::vector<Response> StreamAll(const SessionOptions& o, uint64_t seed,
                                const std::vector<double>& answers,
                                double threshold) {
  Rng rng(seed);
  auto session = AboveThresholdSession::Create(o, &rng).value();
  std::vector<Response> out;
  for (double a : answers) {
    const auto r = session->Process(a, threshold);
    if (!r.ok()) break;
    out.push_back(*r);
  }
  return out;
}

TEST(SessionBatchTest, SingleRunAppendMatchesStreaming) {
  const std::vector<double> answers = MakeAnswers(4000);
  for (const auto& [total, per_round] :
       {std::pair{1.0, 0.1}, {1.0, 0.3}, {0.45, 0.15}, {0.2, 0.2}}) {
    const SessionOptions o = Options(total, per_round);
    const std::vector<Response> expect = StreamAll(o, 7, answers, 0.0);

    Rng rng(7);
    auto session = AboveThresholdSession::Create(o, &rng).value();
    std::vector<Response> got;
    const size_t appended = session->RunAppend(answers, 0.0, &got);
    EXPECT_EQ(appended, expect.size()) << "total=" << total;
    EXPECT_EQ(got, expect) << "total=" << total << " per=" << per_round;
    EXPECT_TRUE(session->exhausted());
    EXPECT_EQ(session->queries_processed(),
              static_cast<int64_t>(expect.size()));
  }
}

TEST(SessionBatchTest, InterleavedProcessAndRunAppendMatchesStreaming) {
  // Alternate single Process() calls, small batches, and batches large
  // enough to roll over several rounds (Reset/re-Create inside the call),
  // for both an exact-fit (10 × 0.1) and an inexact (0.3) schedule.
  const std::vector<double> answers = MakeAnswers(4000);
  for (const double per_round : {0.1, 0.3}) {
    const SessionOptions o = Options(1.0, per_round);
    const std::vector<Response> expect = StreamAll(o, 11, answers, 0.0);

    Rng rng(11);
    auto session = AboveThresholdSession::Create(o, &rng).value();
    std::vector<Response> got;
    size_t i = 0;
    int step = 0;
    while (i < answers.size() && !session->exhausted()) {
      if (step % 3 == 0) {
        const auto r = session->Process(answers[i], 0.0);
        if (!r.ok()) break;
        got.push_back(*r);
        ++i;
      } else {
        const size_t want = step % 3 == 1 ? 7 : 701;
        const std::span<const double> block(answers.data() + i,
                                            std::min(want, answers.size() - i));
        const size_t n = session->RunAppend(block, 0.0, &got);
        i += n;
        if (n < block.size()) break;  // budget ended mid-block
      }
      ++step;
    }
    EXPECT_EQ(got, expect) << "per_round=" << per_round;
    EXPECT_TRUE(session->exhausted());
  }
}

TEST(SessionBatchTest, PerQueryThresholdOverloadMatchesStreaming) {
  const std::vector<double> answers = MakeAnswers(1500);
  std::vector<double> thresholds(answers.size());
  Rng tgen(556);
  for (double& t : thresholds) t = tgen.NextUniform(-5.0, 5.0);

  const SessionOptions o = Options(0.8, 0.2);
  Rng rng_a(13);
  auto streaming = AboveThresholdSession::Create(o, &rng_a).value();
  std::vector<Response> expect;
  for (size_t i = 0; i < answers.size(); ++i) {
    const auto r = streaming->Process(answers[i], thresholds[i]);
    if (!r.ok()) break;
    expect.push_back(*r);
  }

  Rng rng_b(13);
  auto batch = AboveThresholdSession::Create(o, &rng_b).value();
  std::vector<Response> got;
  batch->RunAppend(answers, thresholds, &got);
  EXPECT_EQ(got, expect);
}

TEST(SessionBatchTest, NearThresholdRolloverStaysFusedAndBitEqual) {
  // Session rollover through the fused tier-2 engine: answers clustered
  // near the threshold so every round's chunks run the single-pass fused
  // scan (not the tier-1 skip), across several budget-funded rounds, at
  // every dispatch level. The Response stream must equal the scalar
  // streaming session bit for bit — rollover replays draw-order step 1
  // per round, and fusion must not disturb it.
  ScopedDispatchLevel restore;
  SessionOptions o = Options(1.0, 0.2);
  o.round.cutoff = 4;  // several rollovers inside one RunAppend
  // Probe the round's ν scale to park answers a couple of scales below.
  Rng rng_probe(91);
  const double nu_scale =
      SparseVector::Create(
          [&] {
            SvtOptions r = o.round;
            r.epsilon = o.epsilon_per_round;
            return r;
          }(),
          &rng_probe)
          .value()
          ->query_noise_scale();
  std::vector<double> answers(3000);
  Rng gen(557);
  for (double& a : answers) {
    a = (-2.0 + (gen.NextDouble() - 0.5)) * nu_scale;
  }

  ASSERT_TRUE(vec::SetDispatchLevel(vec::DispatchLevel::kScalar));
  const std::vector<Response> expect = StreamAll(o, 37, answers, 0.0);
  ASSERT_FALSE(expect.empty());

  for (vec::DispatchLevel level : vec::kAllDispatchLevels) {
    if (!vec::SetDispatchLevel(level)) continue;
    Rng rng(37);
    auto session = AboveThresholdSession::Create(o, &rng).value();
    std::vector<Response> got;
    session->RunAppend(answers, 0.0, &got);
    EXPECT_EQ(got, expect) << vec::DispatchLevelName(level);
    EXPECT_GT(session->rounds_started(), 1) << "workload must roll over";
  }
}

TEST(SessionBatchTest, ExponentialNoiseRolloverBitEqualAtEveryLevel) {
  // The exponential-noise axis through sessions: the same rollover +
  // dispatch-level walk as above, for the arXiv 2407.20068 shape (one-sided
  // ρ, Laplace ν) and the arXiv 2010.00917 ThresholdMonitor shape (both
  // exponential, ρ redrawn after every ⊤). One RNG word per exponential
  // variate changes the draw-order accounting, so round rollover replaying
  // draw-order step 1 with a single-word ρ is exactly what this pins.
  ScopedDispatchLevel restore;
  struct Shape {
    const char* name;
    NoiseKind rho, nu;
    bool resample;
  };
  for (const Shape& shape :
       {Shape{"exp-rho", NoiseKind::kExponential, NoiseKind::kLaplace, false},
        Shape{"monitor", NoiseKind::kExponential, NoiseKind::kExponential,
              true}}) {
    SessionOptions o = Options(1.0, 0.2);
    o.round.cutoff = 4;
    o.round.rho_kind = shape.rho;
    o.round.nu_kind = shape.nu;
    o.round.resample_threshold_noise = shape.resample;
    Rng rng_probe(91);
    const double nu_scale =
        SparseVector::Create(
            [&] {
              SvtOptions r = o.round;
              r.epsilon = o.epsilon_per_round;
              return r;
            }(),
            &rng_probe)
            .value()
            ->query_noise_scale();
    // One-sided ρ raises the effective bar, so park answers closer to the
    // threshold than the Laplace rollover test does to keep positives
    // (and therefore rollovers) flowing.
    std::vector<double> answers(3000);
    Rng gen(558);
    for (double& a : answers) {
      a = (-1.0 + (gen.NextDouble() - 0.5)) * nu_scale;
    }

    ASSERT_TRUE(vec::SetDispatchLevel(vec::DispatchLevel::kScalar));
    const std::vector<Response> expect = StreamAll(o, 41, answers, 0.0);
    ASSERT_FALSE(expect.empty()) << shape.name;

    for (vec::DispatchLevel level : vec::kAllDispatchLevels) {
      if (!vec::SetDispatchLevel(level)) continue;
      Rng rng(41);
      auto session = AboveThresholdSession::Create(o, &rng).value();
      std::vector<Response> got;
      session->RunAppend(answers, 0.0, &got);
      EXPECT_EQ(got, expect)
          << shape.name << " at " << vec::DispatchLevelName(level);
      EXPECT_GT(session->rounds_started(), 1)
          << shape.name << ": workload must roll over";
    }
  }
}

TEST(SessionBatchTest, RunAppendOnlyAppends) {
  // Buffer-reuse contract: pre-existing elements survive untouched.
  const std::vector<double> answers = MakeAnswers(100);
  Rng rng(17);
  auto session =
      AboveThresholdSession::Create(Options(1.0, 0.25), &rng).value();
  std::vector<Response> out = {Response::Above(), Response::AboveValue(3.5)};
  const size_t appended = session->RunAppend(answers, 0.0, &out);
  ASSERT_EQ(out.size(), 2 + appended);
  EXPECT_EQ(out[0], Response::Above());
  EXPECT_EQ(out[1], Response::AboveValue(3.5));
}

TEST(SessionBatchTest, RunAppendOnExhaustedSessionAppendsNothing) {
  const std::vector<double> answers = MakeAnswers(50);
  Rng rng(19);
  auto session =
      AboveThresholdSession::Create(Options(0.2, 0.2), &rng).value();
  std::vector<Response> sink;
  session->RunAppend(std::vector<double>(200, 1e9), 0.0, &sink);  // burn it
  ASSERT_TRUE(session->exhausted());
  std::vector<Response> out;
  EXPECT_EQ(session->RunAppend(answers, 0.0, &out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(SessionBatchTest, CountersMatchStreamingCounters) {
  const std::vector<double> answers = MakeAnswers(3000);
  const SessionOptions o = Options(1.0, 0.1);

  Rng rng_a(23);
  auto streaming = AboveThresholdSession::Create(o, &rng_a).value();
  for (double a : answers) {
    if (!streaming->Process(a, 0.0).ok()) break;
  }

  Rng rng_b(23);
  auto batch = AboveThresholdSession::Create(o, &rng_b).value();
  std::vector<Response> sink;
  batch->RunAppend(answers, 0.0, &sink);

  EXPECT_EQ(batch->queries_processed(), streaming->queries_processed());
  EXPECT_EQ(batch->positives_emitted(), streaming->positives_emitted());
  EXPECT_EQ(batch->rounds_started(), streaming->rounds_started());
  EXPECT_DOUBLE_EQ(batch->accountant().spent(),
                   streaming->accountant().spent());
}

}  // namespace
}  // namespace svt
