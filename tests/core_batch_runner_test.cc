// Batch/streaming equivalence: under the draw-order contract pinned on
// SpecDrivenSvt (core/svt.h), Run()/RunAppend() must emit bit-for-bit the
// Response sequence of a scalar Process() loop with the same seed — for
// every variant's noise structure, at sizes that straddle the engine's
// chunking, through positives, cutoff aborts, numeric outputs and Reset
// cycles. This is the test that licenses every batch-path optimization.

#include "core/batch_runner.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/vecmath.h"
#include "core/budget.h"
#include "core/response.h"
#include "core/svt.h"
#include "core/svt_variants.h"
#include "core/variant_spec.h"
#include "dispatch_test_util.h"

namespace svt {
namespace {

// Builds an answer stream whose positives are sprinkled at irregular
// positions (including exactly at chunk boundaries) on a far-below
// baseline, so both the tier-1 all-below shortcut and the slow path get
// exercised within one run.
std::vector<double> MixedAnswers(size_t n) {
  std::vector<double> answers(n, -50.0);
  for (size_t i = 0; i < n; i += 97) answers[i] = 10.0;   // clear positives
  for (size_t i = 31; i < n; i += 211) answers[i] = 0.1;  // borderline
  if (n > BatchRunner::kChunkSize) {
    answers[BatchRunner::kChunkSize - 1] = 10.0;
    answers[BatchRunner::kChunkSize] = 10.0;
  }
  return answers;
}

// Responses must agree exactly, including numeric payloads bit for bit.
void ExpectSameResponses(const std::vector<Response>& batch,
                         const std::vector<Response>& stream,
                         const std::string& context) {
  ASSERT_EQ(batch.size(), stream.size()) << context;
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(batch[i].outcome, stream[i].outcome) << context << " i=" << i;
    if (batch[i].outcome == Outcome::kAboveValue) {
      ASSERT_EQ(batch[i].value, stream[i].value) << context << " i=" << i;
    }
  }
}

// Runs mechanism `a` through the batch path and `b` (same seed) through a
// manual streaming loop, over several Reset cycles, and demands identical
// output plus identical counters.
void CheckEquivalence(SvtMechanism* batch_mech, SvtMechanism* stream_mech,
                      const std::vector<double>& answers, double threshold,
                      const std::string& context) {
  for (int cycle = 0; cycle < 3; ++cycle) {
    const std::vector<Response> batch = batch_mech->Run(answers, threshold);
    std::vector<Response> stream;
    for (double a : answers) {
      if (stream_mech->exhausted()) break;
      stream.push_back(stream_mech->Process(a, threshold));
    }
    ExpectSameResponses(batch, stream,
                        context + " cycle=" + std::to_string(cycle));
    EXPECT_EQ(batch_mech->positives_emitted(),
              stream_mech->positives_emitted())
        << context;
    EXPECT_EQ(batch_mech->queries_processed(),
              stream_mech->queries_processed())
        << context;
    EXPECT_EQ(batch_mech->exhausted(), stream_mech->exhausted()) << context;
    batch_mech->Reset();
    stream_mech->Reset();
  }
}

class VariantEquivalence : public ::testing::TestWithParam<VariantId> {};

TEST_P(VariantEquivalence, BatchMatchesStreamingAcrossChunks) {
  const VariantId id = GetParam();
  // 3 full chunks plus an odd tail; cutoff high enough to survive most of
  // the stream but low enough to abort some cycles mid-run.
  const std::vector<double> answers =
      MixedAnswers(3 * BatchRunner::kChunkSize + 123);
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng_batch(seed), rng_stream(seed);
    auto batch = MakeVariantMechanism(id, 1.0, 1.0, 40, &rng_batch).value();
    auto stream = MakeVariantMechanism(id, 1.0, 1.0, 40, &rng_stream).value();
    CheckEquivalence(batch.get(), stream.get(), answers, 0.0,
                     std::string(VariantIdToString(id)) + " seed=" +
                         std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VariantEquivalence,
    ::testing::Values(VariantId::kAlg1, VariantId::kAlg2, VariantId::kAlg3,
                      VariantId::kAlg4, VariantId::kAlg5, VariantId::kAlg6,
                      VariantId::kGptt, VariantId::kStandard,
                      VariantId::kExpNoise, VariantId::kRevisited));

TEST_P(VariantEquivalence, BatchOutputIdenticalAcrossDispatchLevels) {
  // Scalar vs SIMD dispatch for every variant's noise structure: same
  // seed, same batch, bit-identical responses. Skips the SIMD half where
  // no SIMD level is compiled in / supported.
  const VariantId id = GetParam();
  ScopedDispatchLevel restore;
  const std::vector<double> answers =
      MixedAnswers(2 * BatchRunner::kChunkSize + 77);

  ASSERT_TRUE(vec::SetDispatchLevel(vec::DispatchLevel::kScalar));
  Rng rng_scalar(41);
  auto scalar_mech = MakeVariantMechanism(id, 1.0, 1.0, 40, &rng_scalar)
                         .value();
  const std::vector<Response> scalar_out = scalar_mech->Run(answers, 0.0);

  for (vec::DispatchLevel level :
       {vec::DispatchLevel::kAvx2, vec::DispatchLevel::kAvx512}) {
    if (!vec::SetDispatchLevel(level)) continue;
    Rng rng_simd(41);
    auto simd_mech =
        MakeVariantMechanism(id, 1.0, 1.0, 40, &rng_simd).value();
    const std::vector<Response> simd_out = simd_mech->Run(answers, 0.0);
    ExpectSameResponses(simd_out, scalar_out,
                        std::string(VariantIdToString(id)) + " dispatch " +
                            vec::DispatchLevelName(level));
    EXPECT_EQ(simd_mech->positives_emitted(),
              scalar_mech->positives_emitted());
    EXPECT_EQ(simd_mech->queries_processed(),
              scalar_mech->queries_processed());
  }
}

TEST(BatchRunnerTest, NumericOutputEpsilon3Equivalence) {
  // Alg. 7 with ε₃ > 0: numeric answers draw from the base stream at each
  // positive — the interleaving the substream contract exists to protect.
  SvtOptions o;
  o.epsilon = 2.0;
  o.cutoff = 25;
  o.numeric_output_fraction = 0.3;
  const std::vector<double> answers = MixedAnswers(5000);
  Rng rng_batch(11), rng_stream(11);
  auto batch = SparseVector::Create(o, &rng_batch).value();
  auto stream = SparseVector::Create(o, &rng_stream).value();
  CheckEquivalence(batch.get(), stream.get(), answers, 0.0, "eps3");
}

TEST(BatchRunnerTest, PerQueryThresholdEquivalence) {
  const size_t n = 2 * BatchRunner::kChunkSize + 57;
  const std::vector<double> answers = MixedAnswers(n);
  std::vector<double> thresholds(n);
  for (size_t i = 0; i < n; ++i) {
    thresholds[i] = (i % 5 == 0) ? -1.0 : 0.5;
  }
  for (uint64_t seed : {4u, 5u}) {
    Rng rng_batch(seed), rng_stream(seed);
    SvtOptions o;
    o.epsilon = 1.0;
    o.cutoff = 60;
    auto batch = SparseVector::Create(o, &rng_batch).value();
    auto stream = SparseVector::Create(o, &rng_stream).value();
    for (int cycle = 0; cycle < 2; ++cycle) {
      const std::vector<Response> b = batch->Run(answers, thresholds);
      std::vector<Response> s;
      for (size_t i = 0; i < n; ++i) {
        if (stream->exhausted()) break;
        s.push_back(stream->Process(answers[i], thresholds[i]));
      }
      ExpectSameResponses(b, s, "per-query seed=" + std::to_string(seed));
      batch->Reset();
      stream->Reset();
    }
  }
}

TEST(BatchRunnerTest, CutoffTruncatesExactly) {
  Rng rng(6);
  SvtOptions o;
  o.epsilon = 100.0;  // tiny noise: the first `cutoff` answers all fire
  o.cutoff = 2;
  auto mech = SparseVector::Create(o, &rng).value();
  const std::vector<double> answers(50, 1e9);
  const std::vector<Response> rs = mech->Run(answers, 0.0);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_TRUE(rs[0].is_positive());
  EXPECT_TRUE(rs[1].is_positive());
  EXPECT_TRUE(mech->exhausted());
  // An exhausted mechanism appends nothing.
  EXPECT_TRUE(mech->Run(answers, 0.0).empty());
}

TEST(BatchRunnerTest, RunAppendReusesBuffer) {
  Rng rng(7);
  SvtOptions o;
  o.epsilon = 1.0;
  o.cutoff = 1000;
  auto mech = SparseVector::Create(o, &rng).value();
  const std::vector<double> answers(100, -50.0);
  std::vector<Response> buffer;
  EXPECT_EQ(mech->RunAppend(answers, 0.0, &buffer), 100u);
  EXPECT_EQ(buffer.size(), 100u);
  // Appending keeps prior content in place.
  EXPECT_EQ(mech->RunAppend(answers, 0.0, &buffer), 100u);
  EXPECT_EQ(buffer.size(), 200u);
  buffer.clear();
  EXPECT_EQ(mech->RunAppend(answers, 0.0, &buffer), 100u);
  EXPECT_EQ(buffer.size(), 100u);
}

TEST(BatchRunnerTest, EmptyBatchIsANoOp) {
  Rng rng(8);
  SvtOptions o;
  auto mech = SparseVector::Create(o, &rng).value();
  EXPECT_TRUE(mech->Run(std::vector<double>{}, 0.0).empty());
  EXPECT_EQ(mech->queries_processed(), 0);
  // The RNG position is untouched: a subsequent run matches a fresh
  // same-seed mechanism that never saw the empty batch.
  Rng rng2(8);
  auto mech2 = SparseVector::Create(o, &rng2).value();
  const std::vector<double> answers = MixedAnswers(100);
  ExpectSameResponses(mech->Run(answers, 0.0), mech2->Run(answers, 0.0),
                      "empty-batch");
}

TEST(BatchRunnerTest, MixedStreamingAndBatchStaysAligned) {
  // Feeding the first k queries through Process() and the rest through
  // Run() must equal the all-streaming sequence: the batch engine picks up
  // the ν substream exactly where streaming left it.
  const std::vector<double> answers = MixedAnswers(3000);
  Rng rng_mixed(9), rng_stream(9);
  SvtOptions o;
  o.epsilon = 1.0;
  o.cutoff = 100;
  auto mixed = SparseVector::Create(o, &rng_mixed).value();
  auto stream = SparseVector::Create(o, &rng_stream).value();

  const size_t split = 123;
  std::vector<Response> mixed_out;
  for (size_t i = 0; i < split && !mixed->exhausted(); ++i) {
    mixed_out.push_back(mixed->Process(answers[i], 0.0));
  }
  if (!mixed->exhausted()) {
    mixed->RunAppend(
        std::span<const double>(answers).subspan(split), 0.0, &mixed_out);
  }

  std::vector<Response> stream_out;
  for (double a : answers) {
    if (stream->exhausted()) break;
    stream_out.push_back(stream->Process(a, 0.0));
  }
  ExpectSameResponses(mixed_out, stream_out, "mixed");
}

TEST(BatchRunnerTest, AllBelowFastPathCountsProcessed) {
  Rng rng(10);
  SvtOptions o;
  o.epsilon = 0.5;
  o.cutoff = 3;
  auto mech = SparseVector::Create(o, &rng).value();
  const std::vector<double> answers(4096, -1e9);
  const std::vector<Response> rs = mech->Run(answers, 0.0);
  EXPECT_EQ(rs.size(), 4096u);
  EXPECT_EQ(mech->queries_processed(), 4096);
  EXPECT_EQ(mech->positives_emitted(), 0);
  for (const Response& r : rs) ASSERT_FALSE(r.is_positive());
  // Far-below answers are exactly what the tier-1 bound proves ⊥: both
  // chunks skip, nothing reaches tier-2.
  EXPECT_EQ(mech->batch_stats().tier1_chunks_skipped, 2);
  EXPECT_EQ(mech->batch_stats().tier2_chunks_scanned, 0);
}

// Builds a near-threshold stream: every answer within a few ν scales of
// the threshold, so no chunk can be proven all-below (the tier-1 bound on
// 2048 draws is ~7.6 ν scales) while positives stay rare — the regime
// where Lyu-Su-Li's variants spend their noise draws.
std::vector<double> NearThresholdAnswers(size_t n, double nu_scale,
                                         uint64_t seed) {
  std::vector<double> answers(n);
  Rng gen(seed);
  for (double& a : answers) {
    a = (-6.0 + (gen.NextDouble() - 0.5)) * nu_scale;
  }
  return answers;
}

TEST(BatchRunnerTest, NearThresholdWorkloadExercisesTier2) {
  // Queries clustered at ρ±ν scale: tier-2 must run for every chunk (the
  // skip counter proves the workload actually hits the transform path) and
  // stay bitwise-equal to streaming.
  const size_t n = 4 * BatchRunner::kChunkSize + 321;
  SvtOptions o;
  o.epsilon = 0.1;
  o.cutoff = 1 << 20;
  o.monotonic = true;
  Rng rng_probe(21);
  const double nu_scale =
      SparseVector::Create(o, &rng_probe).value()->query_noise_scale();
  const std::vector<double> answers = NearThresholdAnswers(n, nu_scale, 99);

  Rng rng_batch(21), rng_stream(21);
  auto batch = SparseVector::Create(o, &rng_batch).value();
  auto stream = SparseVector::Create(o, &rng_stream).value();

  const std::vector<Response> b = batch->Run(answers, 0.0);
  std::vector<Response> s;
  for (double a : answers) {
    if (stream->exhausted()) break;
    s.push_back(stream->Process(a, 0.0));
  }
  ExpectSameResponses(b, s, "near-threshold");

  // Every chunk materialized its ν block; none was skipped.
  EXPECT_EQ(batch->batch_stats().tier1_chunks_skipped, 0);
  EXPECT_EQ(batch->batch_stats().tier2_chunks_scanned, 5);
  // Positives occur (the workload is near, not under, the threshold) but
  // stay rare — this is a ⊥-dominated tier-2 stream, not a cutoff test.
  EXPECT_GT(batch->positives_emitted(), 0);
  EXPECT_LT(batch->positives_emitted(), static_cast<int>(n / 100));

  // Reset clears the tier counters with the rest of the run state.
  batch->Reset();
  EXPECT_EQ(batch->batch_stats().tier1_chunks_skipped, 0);
  EXPECT_EQ(batch->batch_stats().tier2_chunks_scanned, 0);
}

TEST(BatchRunnerTest, BatchOutputIndependentOfDispatchLevel) {
  // The vecmath kernels are bit-identical across dispatch levels, so the
  // whole mechanism — responses, counters, tier decisions — must be too.
  // On hosts without AVX2 this degenerates to scalar-vs-scalar.
  ScopedDispatchLevel restore;
  SvtOptions o;
  o.epsilon = 0.1;
  o.cutoff = 50;
  o.monotonic = true;
  Rng rng_probe(33);
  const double nu_scale =
      SparseVector::Create(o, &rng_probe).value()->query_noise_scale();
  std::vector<double> answers =
      NearThresholdAnswers(3 * BatchRunner::kChunkSize, nu_scale, 7);
  // Splice in far-below stretches so tier-1 skips on some chunks too.
  for (size_t i = 0; i < BatchRunner::kChunkSize; ++i) {
    answers[BatchRunner::kChunkSize + i] = -1e9;
  }

  ASSERT_TRUE(vec::SetDispatchLevel(vec::DispatchLevel::kScalar));
  Rng rng_scalar(5);
  auto scalar_mech = SparseVector::Create(o, &rng_scalar).value();
  const std::vector<Response> scalar_out = scalar_mech->Run(answers, 0.0);
  const auto scalar_stats = scalar_mech->batch_stats();

  for (vec::DispatchLevel level :
       {vec::DispatchLevel::kAvx2, vec::DispatchLevel::kAvx512}) {
    if (!vec::SetDispatchLevel(level)) continue;
    Rng rng_simd(5);
    auto simd_mech = SparseVector::Create(o, &rng_simd).value();
    const std::vector<Response> simd_out = simd_mech->Run(answers, 0.0);
    ExpectSameResponses(simd_out, scalar_out,
                        std::string("dispatch ") +
                            vec::DispatchLevelName(level));
    EXPECT_EQ(simd_mech->batch_stats().tier1_chunks_skipped,
              scalar_stats.tier1_chunks_skipped);
    EXPECT_EQ(simd_mech->batch_stats().tier2_chunks_scanned,
              scalar_stats.tier2_chunks_scanned);
    EXPECT_EQ(simd_mech->positives_emitted(),
              scalar_mech->positives_emitted());
  }
  EXPECT_GT(scalar_stats.tier1_chunks_skipped, 0);
  EXPECT_GT(scalar_stats.tier2_chunks_scanned, 0);
}

TEST(BatchRunnerTest, PerQueryThresholdNearThresholdAcrossDispatchLevels) {
  // The per-query-threshold scan (FindFirst*Pairwise) in its target
  // regime: every answer AND every bar within a few ν scales of zero, odd
  // tail sizes, ties near chunk boundaries. Batch must equal streaming
  // bit for bit at every dispatch level, with and without query noise.
  ScopedDispatchLevel restore;
  SvtOptions o;
  o.epsilon = 0.1;
  o.cutoff = 200;
  o.monotonic = true;
  Rng rng_probe(55);
  const double nu_scale =
      SparseVector::Create(o, &rng_probe).value()->query_noise_scale();

  for (size_t n : {2 * BatchRunner::kChunkSize + 1,
                   3 * BatchRunner::kChunkSize - 1, size_t{613}}) {
    std::vector<double> answers(n), thresholds(n);
    Rng gen(n);
    for (size_t i = 0; i < n; ++i) {
      answers[i] = (-6.0 + (gen.NextDouble() - 0.5)) * nu_scale;
      thresholds[i] = (gen.NextDouble() - 0.5) * nu_scale;
    }
    // A bar pattern that ties exactly at a chunk boundary answer.
    thresholds[BatchRunner::kChunkSize] = answers[BatchRunner::kChunkSize];

    // Scalar streaming is the reference for every (level, path) pair.
    ASSERT_TRUE(vec::SetDispatchLevel(vec::DispatchLevel::kScalar));
    Rng rng_stream(77);
    auto stream = SparseVector::Create(o, &rng_stream).value();
    std::vector<Response> ref;
    for (size_t i = 0; i < n; ++i) {
      if (stream->exhausted()) break;
      ref.push_back(stream->Process(answers[i], thresholds[i]));
    }

    for (vec::DispatchLevel level : vec::kAllDispatchLevels) {
      if (!vec::SetDispatchLevel(level)) continue;
      Rng rng_batch(77);
      auto batch = SparseVector::Create(o, &rng_batch).value();
      const std::vector<Response> b = batch->Run(answers, thresholds);
      ExpectSameResponses(b, ref,
                          std::string("per-query near-threshold ") +
                              vec::DispatchLevelName(level) +
                              " n=" + std::to_string(n));
      // Per-query chunks always run tier-2 (no tier-1 bound is sound).
      EXPECT_EQ(batch->batch_stats().tier1_chunks_skipped, 0);
      EXPECT_GT(batch->batch_stats().tier2_chunks_scanned, 0);
    }
  }

  // The ν-free per-query path (pure FindFirstGePairwise): Alg. 5
  // (Stoddard) has nu_scale == 0, so the scan compares raw answers to
  // per-query bars.
  const size_t n = BatchRunner::kChunkSize + 13;
  std::vector<double> answers(n, -1.0), thresholds(n);
  Rng gen(3);
  for (size_t i = 0; i < n; ++i) {
    thresholds[i] = gen.NextDouble() - 0.97;  // bars straddle the answers
  }
  ASSERT_TRUE(vec::SetDispatchLevel(vec::DispatchLevel::kScalar));
  Rng rng_stream(91);
  auto stream =
      MakeVariantMechanism(VariantId::kAlg5, 1.0, 1.0, 30, &rng_stream)
          .value();
  std::vector<Response> ref;
  for (size_t i = 0; i < n; ++i) {
    if (stream->exhausted()) break;
    ref.push_back(stream->Process(answers[i], thresholds[i]));
  }
  for (vec::DispatchLevel level : vec::kAllDispatchLevels) {
    if (!vec::SetDispatchLevel(level)) continue;
    Rng rng_batch(91);
    auto batch =
        MakeVariantMechanism(VariantId::kAlg5, 1.0, 1.0, 30, &rng_batch)
            .value();
    ExpectSameResponses(batch->Run(answers, thresholds), ref,
                        std::string("nu-free per-query ") +
                            vec::DispatchLevelName(level));
  }
}

TEST(BatchRunnerTest, InterleavedCommonAndPerQueryRunAppendAcrossLevels) {
  // One mechanism fed alternately through the common-threshold and the
  // per-query-threshold RunAppend overloads — the two fused tier-2 paths
  // share the ν substream, so their interleaving must stay draw-for-draw
  // aligned with one streaming Process() loop, at every dispatch level,
  // including segments with odd tails shorter than a SIMD width.
  ScopedDispatchLevel restore;
  SvtOptions o;
  o.epsilon = 0.1;
  o.cutoff = 500;
  o.monotonic = true;
  Rng rng_probe(66);
  const double nu_scale =
      SparseVector::Create(o, &rng_probe).value()->query_noise_scale();

  const size_t n = 3 * BatchRunner::kChunkSize + 41;
  std::vector<double> answers(n), bars(n);
  Rng gen(13);
  for (size_t i = 0; i < n; ++i) {
    answers[i] = (-6.0 + (gen.NextDouble() - 0.5)) * nu_scale;
    bars[i] = (gen.NextDouble() - 0.5) * nu_scale;
  }
  // Segment lengths cycle through odd tails, sub-SIMD-width pieces, and
  // chunk-crossing blocks; even segments run common-threshold (bar 0 for
  // every element), odd segments the per-query overload.
  const size_t seg_len[] = {7, 613, 3, BatchRunner::kChunkSize + 9, 1, 257};

  // Streaming reference (scalar level).
  ASSERT_TRUE(vec::SetDispatchLevel(vec::DispatchLevel::kScalar));
  Rng rng_stream(29);
  auto stream = SparseVector::Create(o, &rng_stream).value();
  std::vector<Response> ref;
  {
    size_t i = 0, seg = 0;
    while (i < n && !stream->exhausted()) {
      const size_t len = std::min(seg_len[seg % 6], n - i);
      for (size_t k = 0; k < len && !stream->exhausted(); ++k) {
        const double bar = (seg % 2 == 0) ? 0.0 : bars[i + k];
        ref.push_back(stream->Process(answers[i + k], bar));
      }
      i += len;
      ++seg;
    }
  }

  std::optional<BatchRunStats> scalar_stats;
  for (vec::DispatchLevel level : vec::kAllDispatchLevels) {
    if (!vec::SetDispatchLevel(level)) continue;
    Rng rng_batch(29);
    auto batch = SparseVector::Create(o, &rng_batch).value();
    std::vector<Response> got;
    size_t i = 0, seg = 0;
    while (i < n && !batch->exhausted()) {
      const size_t len = std::min(seg_len[seg % 6], n - i);
      const std::span<const double> a{answers.data() + i, len};
      if (seg % 2 == 0) {
        batch->RunAppend(a, 0.0, &got);
      } else {
        batch->RunAppend(a, {bars.data() + i, len}, &got);
      }
      i += len;
      ++seg;
    }
    ExpectSameResponses(got, ref,
                        std::string("interleaved ") +
                            vec::DispatchLevelName(level));
    EXPECT_EQ(batch->positives_emitted(), stream->positives_emitted());
    EXPECT_EQ(batch->queries_processed(), stream->queries_processed());

    // The fused paths must be observable: both overloads ran tier-2, the
    // per-query path pulled bounded sub-blocks, and the counters — like
    // the responses — are dispatch-level-independent.
    const BatchRunStats& st = batch->batch_stats();
    EXPECT_GT(st.tier2_chunks_scanned, 0) << vec::DispatchLevelName(level);
    EXPECT_GT(st.tier2_fused_segments, 0) << vec::DispatchLevelName(level);
    EXPECT_GT(st.tier2_fused_subblocks, 0) << vec::DispatchLevelName(level);
    if (!scalar_stats.has_value()) {
      scalar_stats = st;
    } else {
      EXPECT_EQ(st.tier1_chunks_skipped, scalar_stats->tier1_chunks_skipped);
      EXPECT_EQ(st.tier2_chunks_scanned, scalar_stats->tier2_chunks_scanned);
      EXPECT_EQ(st.tier2_fused_segments, scalar_stats->tier2_fused_segments);
      EXPECT_EQ(st.tier2_fused_subblocks,
                scalar_stats->tier2_fused_subblocks);
      EXPECT_EQ(st.tier2_spans_skipped, scalar_stats->tier2_spans_skipped);
    }
  }
}

TEST(BatchRunnerTest, HierarchicalBoundSkipsSpansInsideTier2Chunks) {
  // A chunk with one near-threshold element defeats the whole-chunk bound
  // (the chunk must run tier-2) while every other kBoundSpan-sized span is
  // far below — those spans skip their transform, observably.
  SvtOptions o;
  o.epsilon = 0.1;
  o.cutoff = 100;
  o.monotonic = true;
  Rng rng_probe(31);
  const double nu_scale =
      SparseVector::Create(o, &rng_probe).value()->query_noise_scale();

  const size_t n = BatchRunner::kChunkSize;
  std::vector<double> answers(n, -1e9);
  answers[n - 1] = -0.5 * nu_scale;  // near the bar: no bound can clear it
  Rng rng_batch(31), rng_stream(31);
  auto batch = SparseVector::Create(o, &rng_batch).value();
  auto stream = SparseVector::Create(o, &rng_stream).value();

  const std::vector<Response> b = batch->Run(answers, 0.0);
  std::vector<Response> s;
  for (double a : answers) {
    if (stream->exhausted()) break;
    s.push_back(stream->Process(a, 0.0));
  }
  ExpectSameResponses(b, s, "hierarchical-bound");

  const BatchRunStats& st = batch->batch_stats();
  EXPECT_EQ(st.tier1_chunks_skipped, 0);
  EXPECT_EQ(st.tier2_chunks_scanned, 1);
  // All spans except the one holding the near-threshold element skip.
  EXPECT_GE(st.tier2_spans_skipped,
            static_cast<int64_t>(n / BatchRunner::kBoundSpan) - 1);
  EXPECT_GT(st.tier2_fused_segments, 0);
}

// An all-exponential spec with moderate scales, long-running (huge cutoff)
// so tier counters accumulate over many chunks.
VariantSpec AllExponentialSpec() {
  VariantSpec spec;
  spec.name = "exp-nu-batch-test";
  spec.rho_kind = NoiseKind::kExponential;
  spec.rho_scale = 1.0;
  spec.nu_kind = NoiseKind::kExponential;
  spec.nu_scale = 1.0;
  spec.cutoff = 1 << 20;
  return spec;
}

TEST(BatchRunnerTest, ExpNuOneSidedEnvelopeTierBehavior) {
  // The chunk bound under exponential ν is the one-sided envelope
  // b·(-log u_min): ν_i ∈ [0, b·(-log u_min)], one word per variate. This
  // test pins both halves of its contract: far-below chunks skip at tier 1
  // (the envelope is tight enough to prove ⊥), and a near-threshold
  // workload — answers within the envelope of the bar — runs tier 2 and
  // stays bit-identical to streaming (the envelope never skips a chunk
  // that could fire, or streaming would emit a ⊤ the batch path dropped).
  const size_t n = 2 * BatchRunner::kChunkSize;

  {
    // ρ ≥ 0 and ν ≤ envelope: answers at -1e9 are unreachable.
    Rng rng_batch(3), rng_stream(3);
    CustomSvt batch(AllExponentialSpec(), &rng_batch);
    CustomSvt stream(AllExponentialSpec(), &rng_stream);
    const std::vector<double> answers(n, -1e9);
    CheckEquivalence(&batch, &stream, answers, 0.0, "exp-nu far-below");
    batch.Reset();
    batch.Run(answers, 0.0);
    EXPECT_EQ(batch.batch_stats().tier1_chunks_skipped, 2);
    EXPECT_EQ(batch.batch_stats().tier2_chunks_scanned, 0);
  }

  {
    // Near-threshold on the one-sided axis: answers a few ν scales under
    // the bar (ρ ≥ 0 pushes the bar up, so stay close), where only the
    // upper envelope decides skips. Positives need ν ≥ |a| + ρ (≈ e^-3
    // each), so they occur but stay rare.
    std::vector<double> answers(n);
    Rng gen(99);
    for (double& a : answers) a = -3.0 + (gen.NextDouble() - 0.5);
    Rng rng_batch(5), rng_stream(5);
    CustomSvt batch(AllExponentialSpec(), &rng_batch);
    CustomSvt stream(AllExponentialSpec(), &rng_stream);
    CheckEquivalence(&batch, &stream, answers, 0.0, "exp-nu near-threshold");
    batch.Reset();
    batch.Run(answers, 0.0);
    EXPECT_EQ(batch.batch_stats().tier1_chunks_skipped, 0);
    EXPECT_EQ(batch.batch_stats().tier2_chunks_scanned, 2);
    EXPECT_GT(batch.positives_emitted(), 0);
  }

  {
    // Hierarchical spans under exponential ν: one near element defeats the
    // chunk bound, every other kBoundSpan span still proves all-⊥ from the
    // span-local envelope and skips its transform.
    std::vector<double> answers(BatchRunner::kChunkSize, -1e9);
    answers[BatchRunner::kChunkSize - 1] = -0.5;
    Rng rng_batch(7), rng_stream(7);
    CustomSvt batch(AllExponentialSpec(), &rng_batch);
    CustomSvt stream(AllExponentialSpec(), &rng_stream);
    CheckEquivalence(&batch, &stream, answers, 0.0, "exp-nu hierarchical");
    batch.Reset();
    batch.Run(answers, 0.0);
    const BatchRunStats& st = batch.batch_stats();
    EXPECT_EQ(st.tier1_chunks_skipped, 0);
    EXPECT_EQ(st.tier2_chunks_scanned, 1);
    EXPECT_GE(st.tier2_spans_skipped,
              static_cast<int64_t>(BatchRunner::kChunkSize /
                                   BatchRunner::kBoundSpan) -
                  1);
  }

  // Per-query-threshold overload with exponential ν, across dispatch
  // levels: one word per variate through the bounded fills too.
  {
    ScopedDispatchLevel restore;
    const size_t pn = BatchRunner::kChunkSize + 613;
    std::vector<double> answers(pn), bars(pn);
    Rng gen(17);
    for (size_t i = 0; i < pn; ++i) {
      answers[i] = -6.0 + (gen.NextDouble() - 0.5);
      bars[i] = gen.NextDouble() - 0.5;
    }
    ASSERT_TRUE(vec::SetDispatchLevel(vec::DispatchLevel::kScalar));
    Rng rng_stream(23);
    CustomSvt stream(AllExponentialSpec(), &rng_stream);
    std::vector<Response> ref;
    for (size_t i = 0; i < pn; ++i) {
      if (stream.exhausted()) break;
      ref.push_back(stream.Process(answers[i], bars[i]));
    }
    for (vec::DispatchLevel level : vec::kAllDispatchLevels) {
      if (!vec::SetDispatchLevel(level)) continue;
      Rng rng_batch(23);
      CustomSvt batch(AllExponentialSpec(), &rng_batch);
      ExpectSameResponses(batch.Run(answers, bars), ref,
                          std::string("exp-nu per-query ") +
                              vec::DispatchLevelName(level));
    }
  }
}

class ScopedBatchKernelMode {
 public:
  explicit ScopedBatchKernelMode(BatchKernelMode mode)
      : saved_(ActiveBatchKernelMode()) {
    SetBatchKernelMode(mode);
  }
  ~ScopedBatchKernelMode() { SetBatchKernelMode(saved_); }

  ScopedBatchKernelMode(const ScopedBatchKernelMode&) = delete;
  ScopedBatchKernelMode& operator=(const ScopedBatchKernelMode&) = delete;

 private:
  BatchKernelMode saved_;
};

TEST(BatchRunnerTest, ParseBatchKernelModeFallsBackOnUnrecognized) {
  BatchKernelMode mode = BatchKernelMode::kComposition;
  EXPECT_TRUE(ParseBatchKernelMode("megakernel", &mode));
  EXPECT_EQ(mode, BatchKernelMode::kMegakernel);
  EXPECT_TRUE(ParseBatchKernelMode("composition", &mode));
  EXPECT_EQ(mode, BatchKernelMode::kComposition);
  // Anything else leaves *mode untouched: the SVT_BATCH_KERNELS reader
  // logs one warning and keeps the default instead of aborting.
  EXPECT_FALSE(ParseBatchKernelMode("fused", &mode));
  EXPECT_EQ(mode, BatchKernelMode::kComposition);
  EXPECT_FALSE(ParseBatchKernelMode("", &mode));
  EXPECT_EQ(mode, BatchKernelMode::kComposition);
  EXPECT_FALSE(ParseBatchKernelMode("Megakernel", &mode));
  EXPECT_EQ(mode, BatchKernelMode::kComposition);
}

TEST(BatchRunnerTest, MegakernelAndCompositionModesAgreeExactly) {
  // The kernel-mode axis is purely a performance toggle: responses, run
  // counters, every batch statistic, and the RNG stream positions must be
  // identical between modes — for Laplace and exponential ν, common and
  // per-query thresholds, near-threshold (tier-2 + positives + resumes)
  // and far-below (tier-1) chunks, at every dispatch level. The stream
  // positions are pinned by the back-to-back runs: any divergence in
  // words consumed by run 1 would shift every draw of run 2.
  ScopedDispatchLevel restore_level;
  ScopedBatchKernelMode restore_mode(ActiveBatchKernelMode());

  const size_t n = 2 * BatchRunner::kChunkSize + 123;
  std::vector<double> near(n), bars(n);
  Rng gen(2718);
  for (size_t i = 0; i < n; ++i) {
    // Near-threshold (tier-2, rare positives), with every third bound
    // span far below so the hierarchical span-skip path runs too.
    const bool far_span = (i / BatchRunner::kBoundSpan) % 3 == 0;
    near[i] = far_span ? -1e9 : -3.0 + (gen.NextDouble() - 0.5);
    bars[i] = gen.NextDouble() - 0.5;
  }
  const std::vector<double> far(n, -1e9);  // tier-1 skips every chunk

  struct Observed {
    std::vector<Response> common_near, common_far, common_resumed, per_query;
    BatchRunStats stats;
    int64_t positives = 0, processed = 0;
  };
  const auto run_all = [&](BatchKernelMode mode, bool exp_nu) {
    SetBatchKernelMode(mode);
    Observed obs;
    Rng rng(77);
    std::unique_ptr<SvtMechanism> mech;
    if (exp_nu) {
      mech = std::make_unique<CustomSvt>(AllExponentialSpec(), &rng);
    } else {
      SvtOptions o;
      o.epsilon = 0.5;
      o.cutoff = 1 << 20;
      mech = SparseVector::Create(o, &rng).value();
    }
    obs.common_near = mech->Run(near, 0.0);
    obs.common_far = mech->Run(far, 0.0);
    // Back-to-back re-run without reseeding: catches any stream-position
    // drift from run 1, and its resumes re-enter mid-chunk.
    obs.common_resumed = mech->Run(near, -0.5);
    obs.per_query = mech->Run(near, bars);
    auto* spec_mech = dynamic_cast<SpecDrivenSvt*>(mech.get());
    EXPECT_NE(spec_mech, nullptr);
    if (spec_mech != nullptr) obs.stats = spec_mech->batch_stats();
    obs.positives = mech->positives_emitted();
    obs.processed = mech->queries_processed();
    return obs;
  };

  // The element-granular per-query skip counter must be identical not just
  // across kernel modes but across dispatch levels (it is a deterministic
  // function of the stream words and the span skip words).
  std::optional<int64_t> words_skipped_by_nu[2];

  for (vec::DispatchLevel level : vec::kAllDispatchLevels) {
    if (!vec::SetDispatchLevel(level)) continue;
    for (bool exp_nu : {false, true}) {
      const std::string ctx = std::string(vec::DispatchLevelName(level)) +
                              (exp_nu ? " exp" : " laplace");
      Observed mega, comp;
      {
        SCOPED_TRACE(ctx);
        mega = run_all(BatchKernelMode::kMegakernel, exp_nu);
        comp = run_all(BatchKernelMode::kComposition, exp_nu);
      }
      ExpectSameResponses(mega.common_near, comp.common_near,
                          ctx + " common near");
      ExpectSameResponses(mega.common_far, comp.common_far,
                          ctx + " common far");
      ExpectSameResponses(mega.common_resumed, comp.common_resumed,
                          ctx + " common resumed");
      ExpectSameResponses(mega.per_query, comp.per_query, ctx + " per-query");
      EXPECT_EQ(mega.positives, comp.positives) << ctx;
      EXPECT_GT(mega.positives, 0) << ctx << " workload must have positives";
      EXPECT_EQ(mega.processed, comp.processed) << ctx;
      EXPECT_EQ(mega.stats.tier1_chunks_skipped, comp.stats.tier1_chunks_skipped)
          << ctx;
      EXPECT_EQ(mega.stats.tier2_chunks_scanned, comp.stats.tier2_chunks_scanned)
          << ctx;
      EXPECT_EQ(mega.stats.tier2_fused_segments, comp.stats.tier2_fused_segments)
          << ctx;
      EXPECT_EQ(mega.stats.tier2_spans_skipped, comp.stats.tier2_spans_skipped)
          << ctx;
      EXPECT_EQ(mega.stats.tier2_fused_subblocks,
                comp.stats.tier2_fused_subblocks)
          << ctx;
      EXPECT_EQ(mega.stats.mega_words_skipped_q,
                comp.stats.mega_words_skipped_q)
          << ctx;
      EXPECT_EQ(mega.stats.replay_rederivations,
                comp.stats.replay_rederivations)
          << ctx;
      EXPECT_GT(mega.stats.tier1_chunks_skipped, 0) << ctx;
      EXPECT_GT(mega.stats.tier2_spans_skipped, 0) << ctx;
      // The per-query run's far-below spans have finite skip words, so the
      // skip counter moves; ρ never resamples here, so no resume enters
      // under a moved ρ in either mode.
      EXPECT_GT(mega.stats.mega_words_skipped_q, 0) << ctx;
      EXPECT_EQ(mega.stats.replay_rederivations, 0) << ctx;
      std::optional<int64_t>& words = words_skipped_by_nu[exp_nu ? 1 : 0];
      if (!words.has_value()) {
        words = mega.stats.mega_words_skipped_q;
      } else {
        EXPECT_EQ(*words, mega.stats.mega_words_skipped_q) << ctx;
      }
    }
  }
}

TEST(BatchRunnerTest, MegakernelModeAgreesUnderRhoResampling) {
  // ρ resampling moves the bar after every positive. Upward moves keep
  // the megakernel arm's cached fused-scan hits live: the cached walk
  // replays them with each recorded hit revalidated against the resampled
  // bar (the recorded ν are bit-identical to streaming's, so revalidation
  // is exact). Downward moves void the cache and the resume falls back to
  // the checkpoint walk — including rebuilding its stream cursor at an
  // off-grid position from the enclosing span's pass-1 checkpoint. A
  // hit-dense near-threshold workload forces many of both per chunk;
  // responses, counters, and stream positions must still match the
  // composition exactly at every dispatch level.
  ScopedDispatchLevel restore_level;
  ScopedBatchKernelMode restore_mode(ActiveBatchKernelMode());

  const size_t n = 2 * BatchRunner::kChunkSize + 57;
  std::vector<double> near(n);
  Rng gen(424242);
  for (size_t i = 0; i < n; ++i) {
    near[i] = -2.0 + 2.5 * (gen.NextDouble() - 0.5);
  }

  const auto run_all = [&](BatchKernelMode mode) {
    SetBatchKernelMode(mode);
    Rng rng(1234);
    SvtOptions o;
    o.epsilon = 0.75;
    o.cutoff = 1 << 20;
    o.resample_threshold_noise = true;
    auto mech = SparseVector::Create(o, &rng).value();
    std::vector<Response> out = mech->Run(near, 0.0);
    // Second run resumes from a shifted stream; its chunks re-enter the
    // fallback from fresh cached state.
    std::vector<Response> out2 = mech->Run(near, -0.25);
    auto* spec_mech = dynamic_cast<SpecDrivenSvt*>(mech.get());
    EXPECT_NE(spec_mech, nullptr);
    return std::tuple{std::move(out), std::move(out2),
                      spec_mech != nullptr ? spec_mech->batch_stats()
                                           : BatchRunStats{},
                      mech->positives_emitted()};
  };

  for (vec::DispatchLevel level : vec::kAllDispatchLevels) {
    if (!vec::SetDispatchLevel(level)) continue;
    const std::string ctx(vec::DispatchLevelName(level));
    const auto [mega1, mega2, mega_stats, mega_pos] =
        run_all(BatchKernelMode::kMegakernel);
    const auto [comp1, comp2, comp_stats, comp_pos] =
        run_all(BatchKernelMode::kComposition);
    ExpectSameResponses(mega1, comp1, ctx + " run 1");
    ExpectSameResponses(mega2, comp2, ctx + " run 2");
    EXPECT_EQ(mega_pos, comp_pos) << ctx;
    EXPECT_GT(mega_pos, 20) << ctx << " workload must resample repeatedly";
    EXPECT_EQ(mega_stats.tier2_fused_segments, comp_stats.tier2_fused_segments)
        << ctx;
    EXPECT_EQ(mega_stats.tier2_spans_skipped, comp_stats.tier2_spans_skipped)
        << ctx;
    // Every mid-chunk resume here enters under a freshly resampled ρ, and
    // the counter is mode-independent by construction (counted centrally
    // at the resume site, before the walk decides cache vs. fallback).
    EXPECT_EQ(mega_stats.replay_rederivations, comp_stats.replay_rederivations)
        << ctx;
    EXPECT_GT(mega_stats.replay_rederivations, 0) << ctx;
    // Common-threshold runs never touch the per-query skip counter.
    EXPECT_EQ(mega_stats.mega_words_skipped_q, 0) << ctx;
    EXPECT_EQ(comp_stats.mega_words_skipped_q, 0) << ctx;
  }
}

TEST(BatchRunnerTest, PerQueryResamplingAgreesAcrossModesAndLevels) {
  // RevSVT-style workload: per-query thresholds with ρ resampled after
  // every positive. Each positive moves ρ mid-sub-block, so the megakernel
  // arm must either replay its recorded prepass hits against the resampled
  // ρ (upward moves — the span skip words derived at the entry ρ stay
  // sound because fl(bar_min + ρ) is monotone in ρ) or rebuild from span
  // checkpoints through the *bounded* pairwise kernels, re-deriving each
  // span's skip word at the current ρ (downward moves). Every third span
  // sits far below its bars so the skip-word vector actually bites.
  // Responses, positives, and both new counters must match the
  // composition exactly at every dispatch level — and the counters must
  // be identical across levels too.
  ScopedDispatchLevel restore_level;
  ScopedBatchKernelMode restore_mode(ActiveBatchKernelMode());

  const size_t n = 2 * BatchRunner::kChunkSize + 57;
  std::vector<double> answers(n), bars(n);
  Rng gen(31337);
  for (size_t i = 0; i < n; ++i) {
    const bool far_span = (i / BatchRunner::kBoundSpan) % 3 == 0;
    answers[i] = far_span ? -1e9 : -2.0 + 2.5 * (gen.NextDouble() - 0.5);
    bars[i] = gen.NextDouble() - 0.5;
  }

  const auto run_all = [&](BatchKernelMode mode, bool exp_noise) {
    SetBatchKernelMode(mode);
    Rng rng(4242);
    std::unique_ptr<SvtMechanism> mech;
    if (exp_noise) {
      VariantSpec spec = AllExponentialSpec();
      spec.resample_rho_after_positive = true;
      spec.rho_resample_scale = 1.0;
      mech = std::make_unique<CustomSvt>(spec, &rng);
    } else {
      SvtOptions o;
      o.epsilon = 0.75;
      o.cutoff = 1 << 20;
      o.resample_threshold_noise = true;
      mech = SparseVector::Create(o, &rng).value();
    }
    std::vector<Response> out = mech->Run(answers, bars);
    auto* spec_mech = dynamic_cast<SpecDrivenSvt*>(mech.get());
    EXPECT_NE(spec_mech, nullptr);
    return std::tuple{std::move(out),
                      spec_mech != nullptr ? spec_mech->batch_stats()
                                           : BatchRunStats{},
                      mech->positives_emitted()};
  };

  for (bool exp_noise : {false, true}) {
    std::optional<int64_t> level_words, level_rederiv;
    for (vec::DispatchLevel level : vec::kAllDispatchLevels) {
      if (!vec::SetDispatchLevel(level)) continue;
      const std::string ctx = std::string(vec::DispatchLevelName(level)) +
                              (exp_noise ? " exp" : " laplace");
      const auto [mega, mega_stats, mega_pos] =
          run_all(BatchKernelMode::kMegakernel, exp_noise);
      const auto [comp, comp_stats, comp_pos] =
          run_all(BatchKernelMode::kComposition, exp_noise);
      ExpectSameResponses(mega, comp, ctx + " per-query resample");
      EXPECT_EQ(mega_pos, comp_pos) << ctx;
      EXPECT_GT(mega_pos, 10) << ctx << " workload must resample repeatedly";
      EXPECT_EQ(mega_stats.tier2_fused_segments,
                comp_stats.tier2_fused_segments)
          << ctx;
      EXPECT_EQ(mega_stats.tier2_spans_skipped, comp_stats.tier2_spans_skipped)
          << ctx;
      EXPECT_EQ(mega_stats.mega_words_skipped_q,
                comp_stats.mega_words_skipped_q)
          << ctx;
      EXPECT_EQ(mega_stats.replay_rederivations,
                comp_stats.replay_rederivations)
          << ctx;
      EXPECT_GT(mega_stats.mega_words_skipped_q, 0) << ctx;
      EXPECT_GT(mega_stats.replay_rederivations, 0) << ctx;
      if (!level_words.has_value()) {
        level_words = mega_stats.mega_words_skipped_q;
        level_rederiv = mega_stats.replay_rederivations;
      } else {
        EXPECT_EQ(*level_words, mega_stats.mega_words_skipped_q) << ctx;
        EXPECT_EQ(*level_rederiv, mega_stats.replay_rederivations) << ctx;
      }
    }
  }
}

TEST(BatchRunnerTest, ResamplingHitOverflowAgreesAcrossModes) {
  // The cached-hit replay only engages while a chunk's (or sub-block's)
  // recorded prepass hits fit the fixed cache (kChunkSize/16 entries).
  // This workload defeats it on purpose: the answers sit close enough
  // under the bar that the recording prepass still runs (the skip word is
  // finite) yet hundreds of elements fire the prepass test, so the
  // recorder overflows and every resampled resume must take the
  // checkpoint-rebuild path instead — in the common arm and, with half
  // the spans far below to keep the skip-word vector live, in the
  // per-query arm. Responses and counters must still match composition
  // exactly at every dispatch level.
  ScopedDispatchLevel restore_level;
  ScopedBatchKernelMode restore_mode(ActiveBatchKernelMode());

  SvtOptions o;
  o.epsilon = 0.75;
  o.cutoff = 1 << 20;
  o.resample_threshold_noise = true;
  Rng rng_probe(8);
  const double nu_scale =
      SparseVector::Create(o, &rng_probe).value()->query_noise_scale();

  const size_t n = 2 * BatchRunner::kChunkSize + 57;
  std::vector<double> dense(n), mixed(n), bars(n);
  Rng gen(515151);
  for (size_t i = 0; i < n; ++i) {
    // Dense: every element ~1.5 ν scales under the common bar — the fire
    // probability (~e^-1.5/2 per element) yields far more than
    // kChunkSize/16 prepass hits per chunk while the chunk skip word
    // stays finite.
    dense[i] = (-1.5 + 0.2 * (gen.NextDouble() - 0.5)) * nu_scale;
    bars[i] = 0.5 * (gen.NextDouble() - 0.5) * nu_scale;
    // Mixed (per-query arm): alternating spans far below (finite skip
    // words keep the recording prepass on) and spans hugging their bars
    // (~e^-0.5/2 fire probability — overflow again).
    const bool far_span = (i / BatchRunner::kBoundSpan) % 2 == 0;
    mixed[i] =
        far_span ? -1e9 : bars[i] + (-0.5 + 0.2 * (gen.NextDouble() - 0.5)) *
                              nu_scale;
  }

  const auto run_all = [&](BatchKernelMode mode) {
    SetBatchKernelMode(mode);
    Rng rng(9090);
    auto mech = SparseVector::Create(o, &rng).value();
    std::vector<Response> common = mech->Run(dense, 0.0);
    std::vector<Response> per_query = mech->Run(mixed, bars);
    auto* spec_mech = dynamic_cast<SpecDrivenSvt*>(mech.get());
    EXPECT_NE(spec_mech, nullptr);
    return std::tuple{std::move(common), std::move(per_query),
                      spec_mech != nullptr ? spec_mech->batch_stats()
                                           : BatchRunStats{},
                      mech->positives_emitted()};
  };

  for (vec::DispatchLevel level : vec::kAllDispatchLevels) {
    if (!vec::SetDispatchLevel(level)) continue;
    const std::string ctx(vec::DispatchLevelName(level));
    const auto [mega_c, mega_pq, mega_stats, mega_pos] =
        run_all(BatchKernelMode::kMegakernel);
    const auto [comp_c, comp_pq, comp_stats, comp_pos] =
        run_all(BatchKernelMode::kComposition);
    ExpectSameResponses(mega_c, comp_c, ctx + " overflow common");
    ExpectSameResponses(mega_pq, comp_pq, ctx + " overflow per-query");
    EXPECT_EQ(mega_pos, comp_pos) << ctx;
    // Dense positives: far more than the hit cache can hold per chunk.
    EXPECT_GT(mega_pos, static_cast<int64_t>(BatchRunner::kChunkSize / 16))
        << ctx;
    EXPECT_EQ(mega_stats.tier2_fused_segments, comp_stats.tier2_fused_segments)
        << ctx;
    EXPECT_EQ(mega_stats.tier2_spans_skipped, comp_stats.tier2_spans_skipped)
        << ctx;
    EXPECT_EQ(mega_stats.mega_words_skipped_q, comp_stats.mega_words_skipped_q)
        << ctx;
    EXPECT_EQ(mega_stats.replay_rederivations, comp_stats.replay_rederivations)
        << ctx;
    EXPECT_GT(mega_stats.replay_rederivations, 0) << ctx;
    EXPECT_GT(mega_stats.mega_words_skipped_q, 0) << ctx;
  }
}

TEST(BatchRunnerTest, TinyAndOddSizedBatchesMatchStreaming) {
  // Engine-level odd-tail regression for the fused paths: batches shorter
  // than one SIMD width, shorter than one bound span, and one past each
  // boundary — common and per-query — must equal streaming exactly.
  SvtOptions o;
  o.epsilon = 0.1;
  o.cutoff = 50;
  o.monotonic = true;
  Rng rng_probe(71);
  const double nu_scale =
      SparseVector::Create(o, &rng_probe).value()->query_noise_scale();

  for (size_t n : {size_t{1}, size_t{3}, size_t{7}, size_t{9},
                   BatchRunner::kBoundSpan - 1, BatchRunner::kBoundSpan + 1,
                   BatchRunner::kChunkSize + 3}) {
    std::vector<double> answers(n), bars(n);
    Rng gen(n + 1);
    for (size_t i = 0; i < n; ++i) {
      answers[i] = (-2.0 + (gen.NextDouble() - 0.5)) * nu_scale;
      bars[i] = (gen.NextDouble() - 0.5) * nu_scale;
    }
    for (const bool per_query : {false, true}) {
      Rng rng_batch(77), rng_stream(77);
      auto batch = SparseVector::Create(o, &rng_batch).value();
      auto stream = SparseVector::Create(o, &rng_stream).value();
      std::vector<Response> got, ref;
      if (per_query) {
        batch->RunAppend(answers, bars, &got);
      } else {
        batch->RunAppend(answers, 0.0, &got);
      }
      for (size_t i = 0; i < n && !stream->exhausted(); ++i) {
        ref.push_back(
            stream->Process(answers[i], per_query ? bars[i] : 0.0));
      }
      ExpectSameResponses(got, ref,
                          "tiny n=" + std::to_string(n) +
                              (per_query ? " per-query" : " common"));
    }
  }
}

}  // namespace
}  // namespace svt
