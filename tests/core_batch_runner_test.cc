// Batch/streaming equivalence: under the draw-order contract pinned on
// SpecDrivenSvt (core/svt.h), Run()/RunAppend() must emit bit-for-bit the
// Response sequence of a scalar Process() loop with the same seed — for
// every variant's noise structure, at sizes that straddle the engine's
// chunking, through positives, cutoff aborts, numeric outputs and Reset
// cycles. This is the test that licenses every batch-path optimization.

#include "core/batch_runner.h"

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/budget.h"
#include "core/response.h"
#include "core/svt.h"
#include "core/svt_variants.h"
#include "core/variant_spec.h"

namespace svt {
namespace {

// Builds an answer stream whose positives are sprinkled at irregular
// positions (including exactly at chunk boundaries) on a far-below
// baseline, so both the tier-1 all-below shortcut and the slow path get
// exercised within one run.
std::vector<double> MixedAnswers(size_t n) {
  std::vector<double> answers(n, -50.0);
  for (size_t i = 0; i < n; i += 97) answers[i] = 10.0;   // clear positives
  for (size_t i = 31; i < n; i += 211) answers[i] = 0.1;  // borderline
  if (n > BatchRunner::kChunkSize) {
    answers[BatchRunner::kChunkSize - 1] = 10.0;
    answers[BatchRunner::kChunkSize] = 10.0;
  }
  return answers;
}

// Responses must agree exactly, including numeric payloads bit for bit.
void ExpectSameResponses(const std::vector<Response>& batch,
                         const std::vector<Response>& stream,
                         const std::string& context) {
  ASSERT_EQ(batch.size(), stream.size()) << context;
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(batch[i].outcome, stream[i].outcome) << context << " i=" << i;
    if (batch[i].outcome == Outcome::kAboveValue) {
      ASSERT_EQ(batch[i].value, stream[i].value) << context << " i=" << i;
    }
  }
}

// Runs mechanism `a` through the batch path and `b` (same seed) through a
// manual streaming loop, over several Reset cycles, and demands identical
// output plus identical counters.
void CheckEquivalence(SvtMechanism* batch_mech, SvtMechanism* stream_mech,
                      const std::vector<double>& answers, double threshold,
                      const std::string& context) {
  for (int cycle = 0; cycle < 3; ++cycle) {
    const std::vector<Response> batch = batch_mech->Run(answers, threshold);
    std::vector<Response> stream;
    for (double a : answers) {
      if (stream_mech->exhausted()) break;
      stream.push_back(stream_mech->Process(a, threshold));
    }
    ExpectSameResponses(batch, stream,
                        context + " cycle=" + std::to_string(cycle));
    EXPECT_EQ(batch_mech->positives_emitted(),
              stream_mech->positives_emitted())
        << context;
    EXPECT_EQ(batch_mech->queries_processed(),
              stream_mech->queries_processed())
        << context;
    EXPECT_EQ(batch_mech->exhausted(), stream_mech->exhausted()) << context;
    batch_mech->Reset();
    stream_mech->Reset();
  }
}

class VariantEquivalence : public ::testing::TestWithParam<VariantId> {};

TEST_P(VariantEquivalence, BatchMatchesStreamingAcrossChunks) {
  const VariantId id = GetParam();
  // 3 full chunks plus an odd tail; cutoff high enough to survive most of
  // the stream but low enough to abort some cycles mid-run.
  const std::vector<double> answers =
      MixedAnswers(3 * BatchRunner::kChunkSize + 123);
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng_batch(seed), rng_stream(seed);
    auto batch = MakeVariantMechanism(id, 1.0, 1.0, 40, &rng_batch).value();
    auto stream = MakeVariantMechanism(id, 1.0, 1.0, 40, &rng_stream).value();
    CheckEquivalence(batch.get(), stream.get(), answers, 0.0,
                     std::string(VariantIdToString(id)) + " seed=" +
                         std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VariantEquivalence,
    ::testing::Values(VariantId::kAlg1, VariantId::kAlg2, VariantId::kAlg3,
                      VariantId::kAlg4, VariantId::kAlg5, VariantId::kAlg6,
                      VariantId::kGptt, VariantId::kStandard));

TEST(BatchRunnerTest, NumericOutputEpsilon3Equivalence) {
  // Alg. 7 with ε₃ > 0: numeric answers draw from the base stream at each
  // positive — the interleaving the substream contract exists to protect.
  SvtOptions o;
  o.epsilon = 2.0;
  o.cutoff = 25;
  o.numeric_output_fraction = 0.3;
  const std::vector<double> answers = MixedAnswers(5000);
  Rng rng_batch(11), rng_stream(11);
  auto batch = SparseVector::Create(o, &rng_batch).value();
  auto stream = SparseVector::Create(o, &rng_stream).value();
  CheckEquivalence(batch.get(), stream.get(), answers, 0.0, "eps3");
}

TEST(BatchRunnerTest, PerQueryThresholdEquivalence) {
  const size_t n = 2 * BatchRunner::kChunkSize + 57;
  const std::vector<double> answers = MixedAnswers(n);
  std::vector<double> thresholds(n);
  for (size_t i = 0; i < n; ++i) {
    thresholds[i] = (i % 5 == 0) ? -1.0 : 0.5;
  }
  for (uint64_t seed : {4u, 5u}) {
    Rng rng_batch(seed), rng_stream(seed);
    SvtOptions o;
    o.epsilon = 1.0;
    o.cutoff = 60;
    auto batch = SparseVector::Create(o, &rng_batch).value();
    auto stream = SparseVector::Create(o, &rng_stream).value();
    for (int cycle = 0; cycle < 2; ++cycle) {
      const std::vector<Response> b = batch->Run(answers, thresholds);
      std::vector<Response> s;
      for (size_t i = 0; i < n; ++i) {
        if (stream->exhausted()) break;
        s.push_back(stream->Process(answers[i], thresholds[i]));
      }
      ExpectSameResponses(b, s, "per-query seed=" + std::to_string(seed));
      batch->Reset();
      stream->Reset();
    }
  }
}

TEST(BatchRunnerTest, CutoffTruncatesExactly) {
  Rng rng(6);
  SvtOptions o;
  o.epsilon = 100.0;  // tiny noise: the first `cutoff` answers all fire
  o.cutoff = 2;
  auto mech = SparseVector::Create(o, &rng).value();
  const std::vector<double> answers(50, 1e9);
  const std::vector<Response> rs = mech->Run(answers, 0.0);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_TRUE(rs[0].is_positive());
  EXPECT_TRUE(rs[1].is_positive());
  EXPECT_TRUE(mech->exhausted());
  // An exhausted mechanism appends nothing.
  EXPECT_TRUE(mech->Run(answers, 0.0).empty());
}

TEST(BatchRunnerTest, RunAppendReusesBuffer) {
  Rng rng(7);
  SvtOptions o;
  o.epsilon = 1.0;
  o.cutoff = 1000;
  auto mech = SparseVector::Create(o, &rng).value();
  const std::vector<double> answers(100, -50.0);
  std::vector<Response> buffer;
  EXPECT_EQ(mech->RunAppend(answers, 0.0, &buffer), 100u);
  EXPECT_EQ(buffer.size(), 100u);
  // Appending keeps prior content in place.
  EXPECT_EQ(mech->RunAppend(answers, 0.0, &buffer), 100u);
  EXPECT_EQ(buffer.size(), 200u);
  buffer.clear();
  EXPECT_EQ(mech->RunAppend(answers, 0.0, &buffer), 100u);
  EXPECT_EQ(buffer.size(), 100u);
}

TEST(BatchRunnerTest, EmptyBatchIsANoOp) {
  Rng rng(8);
  SvtOptions o;
  auto mech = SparseVector::Create(o, &rng).value();
  EXPECT_TRUE(mech->Run(std::vector<double>{}, 0.0).empty());
  EXPECT_EQ(mech->queries_processed(), 0);
  // The RNG position is untouched: a subsequent run matches a fresh
  // same-seed mechanism that never saw the empty batch.
  Rng rng2(8);
  auto mech2 = SparseVector::Create(o, &rng2).value();
  const std::vector<double> answers = MixedAnswers(100);
  ExpectSameResponses(mech->Run(answers, 0.0), mech2->Run(answers, 0.0),
                      "empty-batch");
}

TEST(BatchRunnerTest, MixedStreamingAndBatchStaysAligned) {
  // Feeding the first k queries through Process() and the rest through
  // Run() must equal the all-streaming sequence: the batch engine picks up
  // the ν substream exactly where streaming left it.
  const std::vector<double> answers = MixedAnswers(3000);
  Rng rng_mixed(9), rng_stream(9);
  SvtOptions o;
  o.epsilon = 1.0;
  o.cutoff = 100;
  auto mixed = SparseVector::Create(o, &rng_mixed).value();
  auto stream = SparseVector::Create(o, &rng_stream).value();

  const size_t split = 123;
  std::vector<Response> mixed_out;
  for (size_t i = 0; i < split && !mixed->exhausted(); ++i) {
    mixed_out.push_back(mixed->Process(answers[i], 0.0));
  }
  if (!mixed->exhausted()) {
    mixed->RunAppend(
        std::span<const double>(answers).subspan(split), 0.0, &mixed_out);
  }

  std::vector<Response> stream_out;
  for (double a : answers) {
    if (stream->exhausted()) break;
    stream_out.push_back(stream->Process(a, 0.0));
  }
  ExpectSameResponses(mixed_out, stream_out, "mixed");
}

TEST(BatchRunnerTest, AllBelowFastPathCountsProcessed) {
  Rng rng(10);
  SvtOptions o;
  o.epsilon = 0.5;
  o.cutoff = 3;
  auto mech = SparseVector::Create(o, &rng).value();
  const std::vector<double> answers(4096, -1e9);
  const std::vector<Response> rs = mech->Run(answers, 0.0);
  EXPECT_EQ(rs.size(), 4096u);
  EXPECT_EQ(mech->queries_processed(), 4096);
  EXPECT_EQ(mech->positives_emitted(), 0);
  for (const Response& r : rs) ASSERT_FALSE(r.is_positive());
}

}  // namespace
}  // namespace svt
