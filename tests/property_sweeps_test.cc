// Cross-cutting property sweeps (TEST_P): the invariants that must hold
// for every variant / budget / instance combination, not just the specific
// examples of the per-module tests.
//
//  * probability closure: Σ_patterns Pr[pattern] = 1 for every variant;
//  * ε-DP bounds across an (ε, cutoff, instance-profile) grid;
//  * MC-vs-closed-form agreement for every variant;
//  * metric algebra (bounds, monotonicity under improvement);
//  * selection invariants for every method in the §6 lineup.

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "audit/monte_carlo.h"
#include "audit/privacy_auditor.h"
#include "common/rng.h"
#include "core/svt_variants.h"
#include "core/top_select.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace svt {
namespace {

// ---------------------------------------------------------------------------
// Probability closure for every variant over several answer profiles.
// ---------------------------------------------------------------------------

struct ClosureCase {
  VariantId id;
  std::vector<double> answers;
  double threshold;
};

class ProbabilityClosureSweep
    : public ::testing::TestWithParam<std::tuple<VariantId, int>> {};

TEST_P(ProbabilityClosureSweep, PatternsSumToOne) {
  const VariantId id = std::get<0>(GetParam());
  const int profile = std::get<1>(GetParam());
  static const std::vector<std::vector<double>> kProfiles = {
      {0.0, 0.0, 0.0},              // all at threshold
      {1.5, -2.0, 0.3, 0.9},        // mixed
      {-5.0, -5.0, -5.0, -5.0},     // all far below
      {4.0, 4.0, 4.0},              // all far above
  };
  const std::vector<double>& answers = kProfiles[profile];
  const VariantSpec spec = MakeSpec(id, /*epsilon=*/1.2, /*sensitivity=*/1.0,
                                    /*cutoff=*/2);
  EXPECT_NEAR(TotalProbabilityOverPatterns(spec, answers, 0.25), 1.0, 1e-7)
      << VariantIdToString(id) << " profile " << profile;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProbabilityClosureSweep,
    ::testing::Combine(::testing::Values(VariantId::kAlg1, VariantId::kAlg2,
                                         VariantId::kAlg4, VariantId::kAlg5,
                                         VariantId::kAlg6, VariantId::kGptt,
                                         VariantId::kExpNoise,
                                         VariantId::kRevisited),
                       ::testing::Values(0, 1, 2, 3)));

// ---------------------------------------------------------------------------
// ε-DP bound grid for the private variants.
// ---------------------------------------------------------------------------

class DpBoundSweep
    : public ::testing::TestWithParam<std::tuple<double, int, int>> {};

TEST_P(DpBoundSweep, Alg1WithinEpsilonEverywhere) {
  const double epsilon = std::get<0>(GetParam());
  const int cutoff = std::get<1>(GetParam());
  const int profile = std::get<2>(GetParam());

  // Neighbor profiles: (qd, qdp) with |qd_i − qdp_i| ≤ Δ = 1.
  static const std::vector<
      std::pair<std::vector<double>, std::vector<double>>>
      kNeighbors = {
          {{0.0, 0.0, 0.0, 0.0}, {1.0, 1.0, 1.0, 1.0}},     // uniform up
          {{0.5, -0.5, 1.5, 0.0}, {-0.5, 0.5, 0.5, -1.0}},  // mixed
          {{2.0, -3.0, 0.0, 1.0}, {1.6, -2.2, 0.9, 0.4}},   // partial shifts
      };
  const auto& [qd, qdp] = kNeighbors[profile];
  const VariantSpec spec = MakeAlg1Spec(epsilon, 1.0, cutoff);
  const auto result = MaxAbsLogRatioOverPatterns(spec, qd, qdp, 0.2);
  EXPECT_LE(result.max_abs_log_ratio, epsilon + 1e-6)
      << "eps=" << epsilon << " c=" << cutoff << " profile=" << profile
      << " worst=" << result.argmax_pattern;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DpBoundSweep,
    ::testing::Combine(::testing::Values(0.3, 1.0, 3.0),
                       ::testing::Values(1, 2),
                       ::testing::Values(0, 1, 2)));

// ---------------------------------------------------------------------------
// Closed-form vs Monte-Carlo for every variant on a shared instance.
// ---------------------------------------------------------------------------

class McAgreementSweep : public ::testing::TestWithParam<VariantId> {};

TEST_P(McAgreementSweep, ClosedFormInsideConfidenceInterval) {
  const VariantId id = GetParam();
  const VariantSpec spec = MakeSpec(id, 1.0, 1.0, 2);
  if (spec.emits_numeric()) GTEST_SKIP() << "numeric-output variant";

  const std::vector<double> answers = {0.6, -0.4, 0.1};
  Rng rng(1000 + static_cast<uint64_t>(id));
  McOptions mc;
  mc.trials = 50000;
  mc.confidence = 0.9999;
  for (const char* pattern : {"___", "T__", "_T_", "TT"}) {
    const std::vector<double> prefix(
        answers.begin(), answers.begin() + std::string(pattern).size());
    const McEstimate est = EstimateOutputProbability(spec, prefix, 0.1,
                                                     pattern, rng, mc);
    const double closed =
        OutputProbability(spec, prefix, 0.1, PatternFromString(pattern));
    EXPECT_GE(closed, est.lower - 0.004)
        << VariantIdToString(id) << " " << pattern;
    EXPECT_LE(closed, est.upper + 0.004)
        << VariantIdToString(id) << " " << pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, McAgreementSweep,
    ::testing::Values(VariantId::kAlg1, VariantId::kAlg2, VariantId::kAlg4,
                      VariantId::kAlg5, VariantId::kAlg6, VariantId::kGptt,
                      VariantId::kStandard, VariantId::kExpNoise,
                      VariantId::kRevisited));

// ---------------------------------------------------------------------------
// Metric algebra on randomized selections.
// ---------------------------------------------------------------------------

class MetricAlgebraSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricAlgebraSweep, BoundsAndImprovementMonotonicity) {
  Rng rng(GetParam());
  const size_t n = 60;
  std::vector<double> scores(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = std::round(rng.NextUniform(0.0, 500.0));
  }
  const size_t c = 1 + rng.NextBounded(20);

  // A random selection of size <= c.
  std::vector<uint32_t> perm;
  rng.ShuffleIndices(n, &perm);
  const size_t take = rng.NextBounded(c + 1);
  std::vector<size_t> selection(perm.begin(), perm.begin() + take);

  const double fnr = FalseNegativeRate(selection, scores, c);
  const double ser = ScoreErrorRate(selection, scores, c);
  EXPECT_GE(fnr, 0.0);
  EXPECT_LE(fnr, 1.0);
  EXPECT_LE(ser, 1.0);
  EXPECT_GE(ser, -1e-12);  // |selection| <= c, so SER cannot go negative

  // Improving the selection by adding a missing true-top item never makes
  // either metric worse.
  const auto top = TrueTopC(scores, c);
  for (size_t candidate : top) {
    if (std::find(selection.begin(), selection.end(), candidate) ==
        selection.end()) {
      std::vector<size_t> improved = selection;
      if (improved.size() < c) {
        improved.push_back(candidate);
        EXPECT_LE(FalseNegativeRate(improved, scores, c), fnr + 1e-12);
        EXPECT_LE(ScoreErrorRate(improved, scores, c), ser + 1e-12);
      }
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricAlgebraSweep,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Selection invariants for every §6 method.
// ---------------------------------------------------------------------------

class MethodInvariantSweep : public ::testing::TestWithParam<int> {};

TEST_P(MethodInvariantSweep, DistinctIndicesWithinRangeAndCutoff) {
  const auto methods = [] {
    std::vector<MethodConfig> all = Figure4Methods();
    const auto fig5 = Figure5Methods();
    all.insert(all.end(), fig5.begin(), fig5.end());
    return all;
  }();
  const MethodConfig& method = methods[GetParam()];

  Rng rng(500 + GetParam());
  std::vector<double> scores(300);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = 300.0 - static_cast<double>(i);
  }
  const int c = 20;
  const double threshold = PaperThreshold(scores, c);
  const auto selected =
      RunMethodOnce(scores, threshold, c, 0.5, true, method, rng).value();

  EXPECT_LE(selected.size(), static_cast<size_t>(c)) << method.label;
  std::set<size_t> unique(selected.begin(), selected.end());
  EXPECT_EQ(unique.size(), selected.size()) << method.label;
  for (size_t idx : selected) {
    EXPECT_LT(idx, scores.size()) << method.label;
  }
  if (method.kind == MethodKind::kEm) {
    EXPECT_EQ(selected.size(), static_cast<size_t>(c));
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, MethodInvariantSweep,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Lemma 1's ε₁ bound across epsilon and length (all-negative patterns).
// ---------------------------------------------------------------------------

class Lemma1Sweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(Lemma1Sweep, AllBottomWithinEpsilonOne) {
  const double epsilon = std::get<0>(GetParam());
  const int length = std::get<1>(GetParam());
  const VariantSpec spec = MakeAlg1Spec(epsilon, 1.0, 1);
  const std::vector<double> qd(length, 0.3);
  const std::vector<double> qdp(length, 1.3);
  const auto pattern = PatternFromString(std::string(length, '_'));
  const double log_d = LogOutputProbability(spec, qd, 0.0, pattern);
  const double log_dp = LogOutputProbability(spec, qdp, 0.0, pattern);
  EXPECT_LE(std::abs(log_d - log_dp), spec.budget.epsilon1 + 1e-6)
      << "eps=" << epsilon << " len=" << length;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Lemma1Sweep,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0),
                       ::testing::Values(1, 4, 10, 25)));

// ---------------------------------------------------------------------------
// Streaming/batch equivalence for every variant under a coupled seed.
// ---------------------------------------------------------------------------

class StreamBatchSweep : public ::testing::TestWithParam<VariantId> {};

TEST_P(StreamBatchSweep, RunMatchesManualLoop) {
  const VariantId id = GetParam();
  const std::vector<double> answers = {2.0, -1.0, 0.5, 3.0, -2.0, 1.0};
  Rng rng_a(77), rng_b(77);
  auto batch = MakeVariantMechanism(id, 0.8, 1.0, 2, &rng_a).value();
  auto stream = MakeVariantMechanism(id, 0.8, 1.0, 2, &rng_b).value();

  const std::vector<Response> from_batch = batch->Run(answers, 0.4);
  std::vector<Response> from_stream;
  for (double a : answers) {
    if (stream->exhausted()) break;
    from_stream.push_back(stream->Process(a, 0.4));
  }
  EXPECT_EQ(ToString(from_batch), ToString(from_stream))
      << VariantIdToString(id);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, StreamBatchSweep,
    ::testing::Values(VariantId::kAlg1, VariantId::kAlg2, VariantId::kAlg3,
                      VariantId::kAlg4, VariantId::kAlg5, VariantId::kAlg6,
                      VariantId::kGptt, VariantId::kExpNoise,
                      VariantId::kRevisited));

}  // namespace
}  // namespace svt
