#include "audit/closed_form.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "audit/privacy_auditor.h"
#include "common/distributions.h"

namespace svt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(PatternFromStringTest, ParsesSymbols) {
  const auto p = PatternFromString("_T_");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0].kind, OutputEvent::Kind::kBelow);
  EXPECT_EQ(p[1].kind, OutputEvent::Kind::kAbove);
  EXPECT_TRUE(p[1].is_positive());
  EXPECT_FALSE(p[0].is_positive());
}

TEST(PatternFromStringTest, RejectsGarbage) {
  EXPECT_DEATH(PatternFromString("_X"), "pattern characters");
}

TEST(ClosedFormTest, EmptyPatternIsCertain) {
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 1);
  const std::vector<double> no_answers;
  const std::vector<OutputEvent> no_events;
  EXPECT_DOUBLE_EQ(
      LogOutputProbability(spec, no_answers, no_answers, no_events), 0.0);
}

// Symmetry: one query exactly at the threshold splits 50/50 for any
// variant with symmetric noise.
TEST(ClosedFormTest, BorderlineSingleQueryIsHalf) {
  for (const VariantSpec& spec :
       {MakeAlg1Spec(1.0, 1.0, 1), MakeAlg2Spec(1.0, 1.0, 1),
        MakeAlg4Spec(1.0, 1.0, 1), MakeAlg6Spec(1.0, 1.0),
        MakeAlg5Spec(1.0, 1.0)}) {
    const std::vector<double> q = {0.0};
    const double p_above =
        OutputProbability(spec, q, 0.0, PatternFromString("T"));
    const double p_below =
        OutputProbability(spec, q, 0.0, PatternFromString("_"));
    EXPECT_NEAR(p_above, 0.5, 1e-8) << spec.name;
    EXPECT_NEAR(p_below, 0.5, 1e-8) << spec.name;
  }
}

TEST(ClosedFormTest, FarAboveIsNearCertainPositive) {
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 1);
  const std::vector<double> q = {1000.0};
  EXPECT_GT(OutputProbability(spec, q, 0.0, PatternFromString("T")), 0.999);
  EXPECT_LT(OutputProbability(spec, q, 0.0, PatternFromString("_")), 0.001);
}

TEST(ClosedFormTest, CutoffInvalidPatterns) {
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 1);  // c = 1
  const std::vector<double> q2 = {0.0, 0.0};
  // Output continuing after the first ⊤ is impossible.
  EXPECT_EQ(LogOutputProbability(spec, q2, 0.0, PatternFromString("T_")),
            -kInf);
  EXPECT_EQ(LogOutputProbability(spec, q2, 0.0, PatternFromString("TT")),
            -kInf);
  // ⊤ at the end is fine.
  EXPECT_GT(LogOutputProbability(spec, q2, 0.0, PatternFromString("_T")),
            -kInf);
}

TEST(ClosedFormTest, TotalProbabilityIsOneAcrossVariants) {
  const std::vector<double> answers = {0.5, -1.0, 2.0, 0.0};
  for (const VariantSpec& spec :
       {MakeAlg1Spec(1.0, 1.0, 2), MakeAlg2Spec(1.0, 1.0, 2),
        MakeAlg4Spec(1.0, 1.0, 2), MakeAlg5Spec(1.0, 1.0),
        MakeAlg6Spec(1.0, 1.0), MakeGpttSpec(0.3, 0.7, 1.0)}) {
    EXPECT_NEAR(TotalProbabilityOverPatterns(spec, answers, 0.4), 1.0, 1e-7)
        << spec.name;
  }
}

TEST(ClosedFormTest, TotalProbabilityIsOneForExponentialVariants) {
  // The support clamps must not lose mass: summing over every pattern of
  // the new exponential-noise variants still gives exactly 1.
  const std::vector<double> answers = {0.5, -1.0, 2.0, 0.0};
  for (const VariantSpec& spec :
       {MakeExpNoiseSpec(1.0, 1.0, 2), MakeRevisitedSpec(1.0, 1.0, 2)}) {
    EXPECT_NEAR(TotalProbabilityOverPatterns(spec, answers, 0.4), 1.0, 1e-7)
        << spec.name;
  }
}

TEST(ClosedFormTest, ExpNoiseBorderlineIsAnalytic) {
  // One query at the threshold: P[⊤] = P[ν ≥ ρ]. With ρ ~ Exp(b_ρ) and
  // ν ~ Lap(b_ν), conditioning on z = ρ ≥ 0 gives
  //   P = ∫₀^∞ (1/b_ρ)e^(−z/b_ρ) · ½e^(−z/b_ν) dz = ½·b_ν/(b_ν + b_ρ) —
  // NOT one half: the one-sided threshold noise breaks the symmetry every
  // Laplace variant has (BorderlineSingleQueryIsHalf above).
  const VariantSpec spec = MakeExpNoiseSpec(1.0, 1.0, 1);  // b_ρ=2, b_ν=4
  const std::vector<double> q = {0.0};
  EXPECT_NEAR(OutputProbability(spec, q, 0.0, PatternFromString("T")),
              0.5 * 4.0 / 6.0, 1e-8);
  EXPECT_NEAR(OutputProbability(spec, q, 0.0, PatternFromString("_")),
              1.0 - 0.5 * 4.0 / 6.0, 1e-8);
}

TEST(ClosedFormTest, RevisitedBorderlineIsAnalytic) {
  // All-exponential: P[ν ≥ ρ] = ∫₀^∞ (1/b_ρ)e^(−z/b_ρ)·e^(−z/b_ν) dz
  //                           = b_ν/(b_ν + b_ρ).
  const VariantSpec spec = MakeRevisitedSpec(2.0, 1.0, 1);  // b_ρ=1, b_ν=2
  const std::vector<double> q = {0.0};
  EXPECT_NEAR(OutputProbability(spec, q, 0.0, PatternFromString("T")),
              2.0 / 3.0, 1e-8);
  EXPECT_NEAR(OutputProbability(spec, q, 0.0, PatternFromString("_")),
              1.0 / 3.0, 1e-8);
}

// ν = 0 with one-sided ρ: probabilities reduce to exact exponential-CDF
// differences, and events requiring ρ ≤ 0 are hard (not just numeric)
// zeros — the support clamp at z = 0 in action.
TEST(ClosedFormTest, ExpRhoIndicatorProbabilitiesExact) {
  VariantSpec spec;
  spec.name = "exp-rho-nu0";
  spec.rho_kind = NoiseKind::kExponential;
  spec.rho_scale = 2.0;
  spec.nu_scale = 0.0;
  const Exponential rho = Exponential::FromScale(2.0);
  const std::vector<double> q = {0.0, 1.0};
  // ⊥⊤ with T = 0: z > 0 (first ⊥) and z ≤ 1 (second ⊤): P = F(1) − F(0)
  // = F(1).
  EXPECT_NEAR(OutputProbability(spec, q, 0.0, PatternFromString("_T")),
              rho.Cdf(1.0), 1e-10);
  // ⊤⊤ needs z ≤ 0, but ρ ≥ 0 almost surely puts zero mass there.
  EXPECT_EQ(LogOutputProbability(spec, q, 0.0, PatternFromString("TT")),
            -kInf);
  // ⊥⊥: z > 1: P = Sf(1).
  EXPECT_NEAR(OutputProbability(spec, q, 0.0, PatternFromString("__")),
              rho.Sf(1.0), 1e-10);
}

TEST(ClosedFormTest, RevisitedSegmentsMultiply) {
  // The resample-ρ factorization carries over to the exponential axis:
  // Pr[⊤ then ⊥] = Pr[⊤] · Pr[⊥ under a fresh one-sided ρ].
  const VariantSpec rev = MakeRevisitedSpec(1.0, 1.0, 2);
  const std::vector<double> q = {0.5, -0.4};
  const double joint =
      LogOutputProbability(rev, q, 0.0, PatternFromString("T_"));

  const std::vector<double> q1 = {0.5};
  const std::vector<double> q2 = {-0.4};
  const double first =
      LogOutputProbability(rev, q1, 0.0, PatternFromString("T"));
  VariantSpec fresh = rev;
  fresh.rho_scale = rev.rho_resample_scale;
  const double second =
      LogOutputProbability(fresh, q2, 0.0, PatternFromString("_"));
  EXPECT_NEAR(joint, first + second, 1e-8);
}

TEST(ClosedFormTest, ExpNoiseProbabilityMonotoneInAnswer) {
  const VariantSpec spec = MakeExpNoiseSpec(0.5, 1.0, 1);
  double prev = 0.0;
  for (double answer : {-5.0, -1.0, 0.0, 1.0, 5.0}) {
    const std::vector<double> q = {answer};
    const double p = OutputProbability(spec, q, 0.0, PatternFromString("T"));
    EXPECT_GT(p, prev) << "answer=" << answer;
    prev = p;
  }
}

TEST(ClosedFormTest, PerQueryThresholdsShiftEquivalence) {
  // Figure 1 footnote: (q_i, T_i) ≡ (q_i − T_i, 0).
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 2);
  const std::vector<double> q = {3.0, 1.0, -2.0};
  const std::vector<double> t = {2.5, 1.5, -3.0};
  std::vector<double> shifted(q.size());
  for (size_t i = 0; i < q.size(); ++i) shifted[i] = q[i] - t[i];
  for (const char* pattern : {"___", "T__", "_T_", "__T", "TT", "_TT"}) {
    const auto events = PatternFromString(pattern);
    const std::vector<double> qq(q.begin(), q.begin() + events.size());
    const std::vector<double> tt(t.begin(), t.begin() + events.size());
    const std::vector<double> ss(shifted.begin(),
                                 shifted.begin() + events.size());
    EXPECT_NEAR(LogOutputProbability(spec, qq, tt, events),
                LogOutputProbability(spec, ss, 0.0, events), 1e-8)
        << pattern;
  }
}

// Alg. 5 (ν = 0): probabilities reduce to exact Laplace-CDF differences of
// the threshold noise.
TEST(ClosedFormTest, Alg5ExactIndicatorProbabilities) {
  const VariantSpec spec = MakeAlg5Spec(1.0, 1.0);  // rho ~ Lap(2)
  const Laplace rho(0.0, 2.0);
  const std::vector<double> q = {0.0, 1.0};
  // Pattern ⊥⊤ with T = 0: needs z > 0 (first ⊥) and z ≤ 1 (second ⊤):
  // P = F(1) − F(0).
  EXPECT_NEAR(OutputProbability(spec, q, 0.0, PatternFromString("_T")),
              rho.Cdf(1.0) - rho.Cdf(0.0), 1e-10);
  // Pattern ⊤⊥: needs z ≤ 0 and z > 1: impossible.
  EXPECT_EQ(LogOutputProbability(spec, q, 0.0, PatternFromString("T_")),
            -kInf);
  // Pattern ⊤⊤: z ≤ 0 and z ≤ 1 => z ≤ 0: P = F(0) = 1/2.
  EXPECT_NEAR(OutputProbability(spec, q, 0.0, PatternFromString("TT")), 0.5,
              1e-10);
  // Pattern ⊥⊥: z > 1: P = 1 − F(1).
  EXPECT_NEAR(OutputProbability(spec, q, 0.0, PatternFromString("__")),
              rho.Sf(1.0), 1e-10);
}

// Theorem 3's exact statement: for Alg. 5, Pr[A(D)=⟨⊥,⊤⟩] > 0 while
// Pr[A(D')=⟨⊥,⊤⟩] = 0.
TEST(ClosedFormTest, Theorem3HardZero) {
  const VariantSpec spec = MakeAlg5Spec(1.0, 1.0);
  const std::vector<double> qd = {0.0, 1.0};
  const std::vector<double> qdp = {1.0, 0.0};
  const auto pattern = PatternFromString("_T");
  EXPECT_GT(LogOutputProbability(spec, qd, 0.0, pattern), -kInf);
  EXPECT_EQ(LogOutputProbability(spec, qdp, 0.0, pattern), -kInf);
}

// Numeric outputs (Alg. 3): the emitted value contributes the density of
// the comparison noise and caps the feasible threshold noise.
TEST(ClosedFormTest, Alg3NumericOutputSingleQuery) {
  const double epsilon = 1.0;
  const VariantSpec spec = MakeAlg3Spec(epsilon, 1.0, 1);
  // One query with q = 0, T = 0, output = value 0. Event: ν = 0 (density)
  // and 0 ≥ T + z, i.e. z ≤ 0 (half the rho mass).
  std::vector<OutputEvent> pattern = {OutputEvent::AboveValue(0.0)};
  const std::vector<double> q = {0.0};
  const Laplace nu(0.0, spec.nu_scale);
  const double expect = std::log(nu.Pdf(0.0)) + std::log(0.5);
  EXPECT_NEAR(LogOutputProbability(spec, q, 0.0, pattern), expect, 1e-8);
}

TEST(ClosedFormTest, Alg3EmittedValueCapsThresholdNoise) {
  const VariantSpec spec = MakeAlg3Spec(1.0, 1.0, 1);
  // Emitting value −5 with T = 0 requires z ≤ −5: much less likely than
  // emitting value +5 (z ≤ 5), even though the ν densities match for q=0...
  // note pdf_ν(−5) = pdf_ν(5), so the entire difference is the z-cap.
  const std::vector<double> q = {0.0};
  const double log_p_neg = LogOutputProbability(
      spec, q, 0.0, std::vector<OutputEvent>{OutputEvent::AboveValue(-5.0)});
  const double log_p_pos = LogOutputProbability(
      spec, q, 0.0, std::vector<OutputEvent>{OutputEvent::AboveValue(5.0)});
  EXPECT_LT(log_p_neg, log_p_pos);
}

TEST(ClosedFormTest, IndicatorPatternOnNumericVariantDies) {
  const VariantSpec spec = MakeAlg3Spec(1.0, 1.0, 1);
  const std::vector<double> q = {0.0};
  EXPECT_DEATH(
      LogOutputProbability(spec, q, 0.0, PatternFromString("T")),
      "emits numeric");
}

// Alg. 2's resampling factorizes across segments: for patterns with no
// positives it must agree with a no-resampling spec of the same scales.
TEST(ClosedFormTest, Alg2AllNegativeMatchesNoResample) {
  const VariantSpec alg2 = MakeAlg2Spec(1.0, 1.0, 2);
  VariantSpec no_resample = alg2;
  no_resample.resample_rho_after_positive = false;
  const std::vector<double> q = {0.3, -0.7, 1.1};
  const auto pattern = PatternFromString("___");
  EXPECT_NEAR(LogOutputProbability(alg2, q, 0.0, pattern),
              LogOutputProbability(no_resample, q, 0.0, pattern), 1e-9);
}

TEST(ClosedFormTest, Alg2SegmentsMultiply) {
  // With resampling, Pr[⊤ then ⊥] = Pr[⊤] · Pr[⊥ under fresh rho] — the
  // segments are independent.
  const VariantSpec alg2 = MakeAlg2Spec(1.0, 1.0, 2);
  const std::vector<double> q = {0.5, -0.4};
  const double joint =
      LogOutputProbability(alg2, q, 0.0, PatternFromString("T_"));

  const std::vector<double> q1 = {0.5};
  const std::vector<double> q2 = {-0.4};
  const double first =
      LogOutputProbability(alg2, q1, 0.0, PatternFromString("T"));
  // Second segment uses the resample scale.
  VariantSpec fresh = alg2;
  fresh.rho_scale = alg2.rho_resample_scale;
  const double second =
      LogOutputProbability(fresh, q2, 0.0, PatternFromString("_"));
  EXPECT_NEAR(joint, first + second, 1e-8);
}

// Alg. 7 with ε₃ > 0: numeric answers use fresh noise, so the value's
// density factors out and the indicator marginal matches the ⊤ pattern.
TEST(ClosedFormTest, StandardNumericMarginalizes) {
  const BudgetSplit split{0.25, 0.25, 0.5};
  const VariantSpec spec = MakeStandardSpec(split, 1.0, 1, false);
  const std::vector<double> q = {1.0};
  const double log_indicator =
      LogOutputProbability(spec, q, 0.0, PatternFromString("T"));
  // Joint with a particular value = indicator × density(value).
  const double v = 1.7;
  const double log_joint = LogOutputProbability(
      spec, q, 0.0, std::vector<OutputEvent>{OutputEvent::AboveValue(v)});
  const Laplace numeric(0.0, spec.numeric_scale);
  EXPECT_NEAR(log_joint, log_indicator + numeric.LogPdf(v - 1.0), 1e-8);
}

TEST(ClosedFormTest, ProbabilityMonotoneInAnswer) {
  const VariantSpec spec = MakeAlg1Spec(0.5, 1.0, 1);
  double prev = 0.0;
  for (double answer : {-5.0, -1.0, 0.0, 1.0, 5.0}) {
    const std::vector<double> q = {answer};
    const double p = OutputProbability(spec, q, 0.0, PatternFromString("T"));
    EXPECT_GT(p, prev) << "answer=" << answer;
    prev = p;
  }
}

TEST(ClosedFormTest, PatternLongerThanAnswersDies) {
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 1);
  const std::vector<double> q = {0.0};
  EXPECT_DEATH(LogOutputProbability(spec, q, 0.0, PatternFromString("_T")),
               "mismatch");
}

TEST(ClosedFormTest, PrefixPatternUsesLeadingAnswers) {
  // A pattern shorter than the answer stream is the probability of that
  // prefix; trailing answers are ignored.
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 1);
  const std::vector<double> all = {0.7, 123.0, -456.0};
  const std::vector<double> first = {0.7};
  EXPECT_NEAR(LogOutputProbability(spec, all, 0.0, PatternFromString("T")),
              LogOutputProbability(spec, first, 0.0, PatternFromString("T")),
              1e-12);
}

}  // namespace
}  // namespace svt
