#include "data/fpgrowth.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"

namespace svt {
namespace {

TransactionDb ClassicDb() {
  // The canonical FP-growth textbook example (Han et al.).
  TransactionDb db(6);
  db.Add({0, 1, 4});     // f, a, m (relabeled)
  db.Add({0, 1, 2, 4});
  db.Add({0, 5});
  db.Add({1, 3});
  db.Add({0, 1, 3, 4});
  return db;
}

std::set<std::string> AsStrings(const std::vector<FrequentItemset>& sets) {
  std::set<std::string> out;
  for (const auto& s : sets) out.insert(ToString(s));
  return out;
}

TEST(FpGrowthTest, MatchesBruteForceOnClassicExample) {
  const TransactionDb db = ClassicDb();
  for (uint64_t min_support : {1u, 2u, 3u, 4u, 5u}) {
    FpGrowthOptions o;
    o.min_support = min_support;
    const auto fp = MineFrequentItemsets(db, o);
    const auto bf = MineFrequentItemsetsBruteForce(db, o);
    EXPECT_EQ(AsStrings(fp), AsStrings(bf)) << "min_support=" << min_support;
  }
}

TEST(FpGrowthTest, SingletonSupports) {
  const TransactionDb db = ClassicDb();
  FpGrowthOptions o;
  o.min_support = 3;
  o.max_itemset_size = 1;
  const auto sets = MineFrequentItemsets(db, o);
  // Supports: item0=4, item1=4, item4=3; others below 3.
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0].support, 4u);
  EXPECT_EQ(sets[1].support, 4u);
  EXPECT_EQ(sets[2].support, 3u);
  EXPECT_EQ(sets[2].items, (std::vector<ItemId>{4}));
}

TEST(FpGrowthTest, FindsMultiItemSets) {
  const TransactionDb db = ClassicDb();
  FpGrowthOptions o;
  o.min_support = 3;
  const auto sets = MineFrequentItemsets(db, o);
  const auto strings = AsStrings(sets);
  // {0,1} appears in transactions 0,1,4 -> support 3; {0,1,4} likewise.
  EXPECT_TRUE(strings.count("{0,1}:3")) << "got: " << *strings.begin();
  EXPECT_TRUE(strings.count("{0,4}:3"));
  EXPECT_TRUE(strings.count("{1,4}:3"));
  EXPECT_TRUE(strings.count("{0,1,4}:3"));
}

TEST(FpGrowthTest, MinSupportFilters) {
  const TransactionDb db = ClassicDb();
  FpGrowthOptions o;
  o.min_support = 5;
  EXPECT_TRUE(MineFrequentItemsets(db, o).empty());
}

TEST(FpGrowthTest, MaxItemsetSizeCaps) {
  const TransactionDb db = ClassicDb();
  FpGrowthOptions o;
  o.min_support = 2;
  o.max_itemset_size = 2;
  for (const auto& s : MineFrequentItemsets(db, o)) {
    EXPECT_LE(s.items.size(), 2u);
  }
}

TEST(FpGrowthTest, MaxResultsKeepsHighestSupport) {
  const TransactionDb db = ClassicDb();
  FpGrowthOptions o;
  o.min_support = 1;
  o.max_results = 3;
  const auto sets = MineFrequentItemsets(db, o);
  ASSERT_EQ(sets.size(), 3u);
  // Sorted by support descending: first two are the support-4 singletons.
  EXPECT_EQ(sets[0].support, 4u);
  EXPECT_GE(sets[1].support, sets[2].support);
}

TEST(FpGrowthTest, EmptyDatabase) {
  TransactionDb db(3);
  FpGrowthOptions o;
  o.min_support = 1;
  EXPECT_TRUE(MineFrequentItemsets(db, o).empty());
}

TEST(FpGrowthTest, SingleTransaction) {
  TransactionDb db(3);
  db.Add({0, 1, 2});
  FpGrowthOptions o;
  o.min_support = 1;
  const auto sets = MineFrequentItemsets(db, o);
  // All 7 non-empty subsets.
  EXPECT_EQ(sets.size(), 7u);
  for (const auto& s : sets) EXPECT_EQ(s.support, 1u);
}

TEST(FpGrowthTest, SupportsAreCorrectAgainstDb) {
  const TransactionDb db = ClassicDb();
  FpGrowthOptions o;
  o.min_support = 2;
  for (const auto& s : MineFrequentItemsets(db, o)) {
    EXPECT_EQ(s.support, db.ItemsetSupport(s.items)) << ToString(s);
  }
}

TEST(FpGrowthTest, DeterministicOrdering) {
  const TransactionDb db = ClassicDb();
  FpGrowthOptions o;
  o.min_support = 2;
  const auto a = MineFrequentItemsets(db, o);
  const auto b = MineFrequentItemsets(db, o);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

// Randomized differential test against brute force.
class FpGrowthRandomSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FpGrowthRandomSweep, MatchesBruteForce) {
  Rng rng(GetParam());
  const uint32_t num_items = 8;
  TransactionDb db(num_items);
  const size_t n_txn = 30;
  for (size_t t = 0; t < n_txn; ++t) {
    Transaction txn;
    for (ItemId i = 0; i < num_items; ++i) {
      if (rng.NextBernoulli(0.35)) txn.push_back(i);
    }
    if (txn.empty()) txn.push_back(static_cast<ItemId>(
        rng.NextBounded(num_items)));
    db.Add(txn);
  }
  FpGrowthOptions o;
  o.min_support = 3 + (GetParam() % 5);
  EXPECT_EQ(AsStrings(MineFrequentItemsets(db, o)),
            AsStrings(MineFrequentItemsetsBruteForce(db, o)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FpGrowthRandomSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(FpGrowthTest, GeneratedDataIntegration) {
  Rng rng(99);
  std::vector<double> profile(30);
  for (int i = 0; i < 30; ++i) profile[i] = 300.0 / (i + 1);
  const TransactionDb db =
      GenerateTransactions(ScoreVector(profile), 400, rng);
  FpGrowthOptions o;
  o.min_support = 40;
  const auto sets = MineFrequentItemsets(db, o);
  // The head items must be frequent singletons.
  bool found_item0 = false;
  for (const auto& s : sets) {
    if (s.items == std::vector<ItemId>{0}) found_item0 = true;
    EXPECT_EQ(s.support, db.ItemsetSupport(s.items));
  }
  EXPECT_TRUE(found_item0);
}

}  // namespace
}  // namespace svt
