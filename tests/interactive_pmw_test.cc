#include "interactive/pmw.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace svt {
namespace {

PmwOptions BasicOptions() {
  PmwOptions o;
  o.epsilon = 2.0;
  o.svt_fraction = 0.5;
  o.error_threshold = 50.0;
  o.max_updates = 8;
  o.learning_rate = 0.1;
  return o;
}

Histogram SkewedData(Rng& rng, size_t domain = 32, size_t records = 2000) {
  std::vector<double> weights(domain);
  for (size_t i = 0; i < domain; ++i) weights[i] = 1.0 / (1.0 + i);
  return Histogram::Random(domain, records, rng, weights);
}

TEST(PmwOptionsTest, Validation) {
  PmwOptions o = BasicOptions();
  EXPECT_TRUE(o.Validate().ok());
  o.epsilon = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = BasicOptions();
  o.svt_fraction = 1.0;
  EXPECT_FALSE(o.Validate().ok());
  o = BasicOptions();
  o.error_threshold = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o = BasicOptions();
  o.max_updates = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = BasicOptions();
  o.learning_rate = 0.0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(PmwTest, CreateRejectsNullRngAndEmptyData) {
  Rng rng(1);
  Histogram data({1.0, 2.0});
  EXPECT_FALSE(
      PrivateMultiplicativeWeights::Create(BasicOptions(), data, nullptr)
          .ok());
  Histogram zero(4);
  EXPECT_FALSE(
      PrivateMultiplicativeWeights::Create(BasicOptions(), zero, &rng).ok());
}

TEST(PmwTest, SyntheticStartsUniformWithDataTotal) {
  Rng rng(2);
  Histogram data = SkewedData(rng);
  auto pmw =
      PrivateMultiplicativeWeights::Create(BasicOptions(), data, &rng)
          .value();
  const Histogram& synth = pmw->synthetic();
  EXPECT_NEAR(synth.total(), data.total(), 1e-9);
  for (size_t i = 1; i < synth.domain_size(); ++i) {
    EXPECT_DOUBLE_EQ(synth.count(i), synth.count(0));
  }
}

TEST(PmwTest, AccurateEstimatesAreFree) {
  Rng rng(3);
  Histogram data = SkewedData(rng);
  PmwOptions o = BasicOptions();
  o.error_threshold = 1e7;  // nothing ever exceeds this
  auto pmw = PrivateMultiplicativeWeights::Create(o, data, &rng).value();
  for (int i = 0; i < 50; ++i) {
    const PmwAnswer a = pmw->AnswerQuery(LinearQuery::RandomSubset(32, rng));
    EXPECT_TRUE(a.answered_from_synthetic);
    EXPECT_FALSE(a.triggered_update);
  }
  EXPECT_EQ(pmw->updates_used(), 0);
  EXPECT_EQ(pmw->free_answers(), 50);
}

TEST(PmwTest, LargeErrorsTriggerUpdatesUpToCutoff) {
  Rng rng(4);
  Histogram data = SkewedData(rng, 32, 20000);  // strongly skewed
  PmwOptions o = BasicOptions();
  o.error_threshold = 5.0;  // uniform synthetic is far off: updates fire
  o.max_updates = 4;
  auto pmw = PrivateMultiplicativeWeights::Create(o, data, &rng).value();
  for (int i = 0; i < 200; ++i) {
    pmw->AnswerQuery(LinearQuery::RandomSubset(32, rng));
  }
  EXPECT_EQ(pmw->updates_used(), 4);
  EXPECT_TRUE(pmw->exhausted());
  EXPECT_EQ(pmw->queries_answered(), 200);
}

TEST(PmwTest, AfterExhaustionAnswersAreFree) {
  Rng rng(5);
  Histogram data = SkewedData(rng, 16, 10000);
  PmwOptions o = BasicOptions();
  o.error_threshold = 1.0;
  o.max_updates = 2;
  auto pmw = PrivateMultiplicativeWeights::Create(o, data, &rng).value();
  while (!pmw->exhausted()) {
    pmw->AnswerQuery(LinearQuery::RandomSubset(16, rng));
  }
  const int64_t free_before = pmw->free_answers();
  for (int i = 0; i < 25; ++i) {
    const PmwAnswer a = pmw->AnswerQuery(LinearQuery::RandomSubset(16, rng));
    EXPECT_TRUE(a.answered_from_synthetic);
  }
  EXPECT_EQ(pmw->free_answers(), free_before + 25);
}

TEST(PmwTest, BudgetNeverExceedsTotal) {
  Rng rng(6);
  Histogram data = SkewedData(rng, 16, 10000);
  PmwOptions o = BasicOptions();
  o.error_threshold = 1.0;  // maximal update pressure
  auto pmw = PrivateMultiplicativeWeights::Create(o, data, &rng).value();
  for (int i = 0; i < 500; ++i) {
    pmw->AnswerQuery(LinearQuery::RandomSubset(16, rng));
  }
  EXPECT_LE(pmw->accountant().spent(), o.epsilon * (1.0 + 1e-9));
}

TEST(PmwTest, UpdatesImproveSyntheticAccuracy) {
  Rng rng(7);
  const size_t domain = 32;
  Histogram data = SkewedData(rng, domain, 50000);
  PmwOptions o = BasicOptions();
  o.epsilon = 20.0;  // generous budget so noise doesn't mask learning
  o.error_threshold = 200.0;
  o.max_updates = 30;
  o.learning_rate = 0.3;
  auto pmw = PrivateMultiplicativeWeights::Create(o, data, &rng).value();

  // Average |error| of the uniform synthetic on held-out queries.
  std::vector<LinearQuery> heldout;
  for (int i = 0; i < 40; ++i) {
    heldout.push_back(LinearQuery::RandomSubset(domain, rng));
  }
  const auto avg_error = [&](const Histogram& synth) {
    double total = 0.0;
    for (const auto& q : heldout) {
      total += std::abs(q.Evaluate(data) - q.Evaluate(synth));
    }
    return total / heldout.size();
  };
  const double before = avg_error(pmw->synthetic());

  for (int i = 0; i < 400 && !pmw->exhausted(); ++i) {
    pmw->AnswerQuery(LinearQuery::RandomSubset(domain, rng));
  }
  const double after = avg_error(pmw->synthetic());
  EXPECT_GT(pmw->updates_used(), 0);
  EXPECT_LT(after, before);
}

TEST(PmwTest, HardAnswersComeFromLaplaceNotSynthetic) {
  Rng rng(8);
  Histogram data = SkewedData(rng, 16, 30000);
  PmwOptions o = BasicOptions();
  o.epsilon = 50.0;  // tiny noise: hard answers land near the truth
  o.error_threshold = 10.0;
  o.max_updates = 3;
  auto pmw = PrivateMultiplicativeWeights::Create(o, data, &rng).value();
  bool saw_update = false;
  for (int i = 0; i < 100 && !pmw->exhausted(); ++i) {
    LinearQuery q = LinearQuery::RandomSubset(16, rng);
    const double truth = q.Evaluate(data);
    const PmwAnswer a = pmw->AnswerQuery(q);
    if (a.triggered_update) {
      saw_update = true;
      EXPECT_NEAR(a.value, truth, 50.0);  // Laplace(1/ε_lap) scale ≈ 0.12
    }
  }
  EXPECT_TRUE(saw_update);
}

TEST(PmwTest, DeterministicGivenSeed) {
  PmwOptions o = BasicOptions();
  o.error_threshold = 30.0;
  Rng data_rng(9);
  Histogram data = SkewedData(data_rng, 16, 5000);

  const auto run = [&](uint64_t seed) {
    Rng rng(seed);
    auto pmw = PrivateMultiplicativeWeights::Create(o, data, &rng).value();
    Rng query_rng(123);
    std::vector<double> answers;
    for (int i = 0; i < 60; ++i) {
      answers.push_back(
          pmw->AnswerQuery(LinearQuery::RandomSubset(16, query_rng)).value);
    }
    return answers;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

}  // namespace
}  // namespace svt
