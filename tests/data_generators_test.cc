#include "data/generators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/dataset_spec.h"

namespace svt {
namespace {

TEST(DatasetSpecTest, Table1Sizes) {
  // The record/item counts of the paper's Table 1, exactly.
  const DatasetSpec bms = BmsPosSpec();
  EXPECT_EQ(bms.num_records, 515597u);
  EXPECT_EQ(bms.num_items, 1657u);

  const DatasetSpec kosarak = KosarakSpec();
  EXPECT_EQ(kosarak.num_records, 990002u);
  EXPECT_EQ(kosarak.num_items, 41270u);

  const DatasetSpec aol = AolSpec();
  EXPECT_EQ(aol.num_records, 647377u);
  EXPECT_EQ(aol.num_items, 2290685u);

  const DatasetSpec zipf = ZipfSpec();
  EXPECT_EQ(zipf.num_records, 1000000u);
  EXPECT_EQ(zipf.num_items, 10000u);
  EXPECT_DOUBLE_EQ(zipf.alpha, 1.0);
  EXPECT_DOUBLE_EQ(zipf.jitter, 0.0);
}

TEST(DatasetSpecTest, AllSpecsHasFour) {
  const auto specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "BMS-POS");
  EXPECT_EQ(specs[3].name, "Zipf");
}

TEST(DatasetSpecTest, ScaledSpecShrinksProportionally) {
  const DatasetSpec full = KosarakSpec();
  const DatasetSpec half = ScaledSpec(full, 0.5);
  EXPECT_NEAR(half.num_items, full.num_items * 0.5, 1.0);
  EXPECT_NEAR(static_cast<double>(half.num_records),
              static_cast<double>(full.num_records) * 0.5, 1.0);
  EXPECT_EQ(ScaledSpec(full, 1.0).num_items, full.num_items);
}

TEST(DatasetSpecTest, ScaledSpecFloorsAtTwoItems) {
  const DatasetSpec tiny = ScaledSpec(BmsPosSpec(), 1e-9);
  EXPECT_GE(tiny.num_items, 2u);
}

TEST(GenerateScoresTest, ZipfIsExactPaperConstruction) {
  Rng rng(1);
  const ScoreVector scores = GenerateScores(ZipfSpec(), rng);
  ASSERT_EQ(scores.size(), 10000u);
  // score_i ∝ 1/i: ratios between ranks must match (integer rounding
  // aside) and rank order must be strictly decreasing in the head.
  EXPECT_GT(scores[0], scores[1]);
  EXPECT_GT(scores[1], scores[2]);
  EXPECT_NEAR(scores[0] / scores[1], 2.0, 0.01);
  EXPECT_NEAR(scores[0] / scores[4], 5.0, 0.05);
  // Total mass ≈ 1M (rounding to integers loses a little).
  EXPECT_NEAR(scores.Total(), 1e6, 1e4);
}

TEST(GenerateScoresTest, DeterministicGivenSeed) {
  Rng rng1(7), rng2(7);
  const ScoreVector a = GenerateScores(BmsPosSpec(), rng1);
  const ScoreVector b = GenerateScores(BmsPosSpec(), rng2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(GenerateScoresTest, RespectsItemCountAndMass) {
  Rng rng(2);
  for (const DatasetSpec& spec :
       {BmsPosSpec(), KosarakSpec(), ZipfSpec()}) {
    const ScoreVector scores = GenerateScores(spec, rng);
    EXPECT_EQ(scores.size(), spec.num_items) << spec.name;
    // Jitter and rounding move total mass by only a few percent.
    EXPECT_NEAR(scores.Total() / spec.total_occurrences(), 1.0, 0.05)
        << spec.name;
  }
}

TEST(GenerateScoresTest, HeadIsHeavyTailIsLight) {
  Rng rng(3);
  const ScoreVector scores = GenerateScores(KosarakSpec(), rng);
  const auto sorted = scores.SortedDescending();
  // Power law: top item much larger than median, median larger than tail.
  EXPECT_GT(sorted[0], 10.0 * sorted[sorted.size() / 2]);
  EXPECT_GE(sorted[sorted.size() / 2], sorted[sorted.size() - 1]);
}

TEST(GenerateScoresTest, ScaledSpecKeepsShape) {
  Rng rng(4);
  const DatasetSpec spec = ScaledSpec(AolSpec(), 0.01);
  const ScoreVector scores = GenerateScores(spec, rng);
  EXPECT_EQ(scores.size(), spec.num_items);
  const auto sorted = scores.SortedDescending();
  EXPECT_GT(sorted[0], sorted[100]);
}

TEST(GenerateTransactionsTest, RecordCountMatches) {
  Rng rng(5);
  const ScoreVector scores({50.0, 30.0, 20.0, 10.0, 5.0});
  const TransactionDb db = GenerateTransactions(scores, 200, rng);
  EXPECT_EQ(db.num_transactions(), 200u);
  EXPECT_EQ(db.num_items(), 5u);
}

TEST(GenerateTransactionsTest, SupportsTrackScoreProfile) {
  Rng rng(6);
  // Heavily skewed profile over 20 items.
  std::vector<double> raw(20);
  for (int i = 0; i < 20; ++i) raw[i] = 1000.0 / (i + 1);
  const ScoreVector scores(raw);
  const TransactionDb db = GenerateTransactions(scores, 5000, rng);
  const auto supports = db.ItemSupports();
  // Rank correlation: item 0 must dominate item 10, which dominates 19.
  EXPECT_GT(supports[0], supports[10]);
  EXPECT_GT(supports[10], supports[19]);
}

TEST(GenerateTransactionsTest, HandlesAllZeroScores) {
  Rng rng(7);
  const ScoreVector scores(std::vector<double>(5, 0.0));
  const TransactionDb db = GenerateTransactions(scores, 50, rng);
  EXPECT_EQ(db.num_transactions(), 50u);
  EXPECT_GT(db.TotalOccurrences(), 0u);
}

TEST(GenerateDatabaseTest, SmallSpecEndToEnd) {
  Rng rng(8);
  DatasetSpec spec = ScaledSpec(BmsPosSpec(), 0.01);
  spec.num_records = 500;  // keep the test fast
  const TransactionDb db = GenerateDatabase(spec, rng);
  EXPECT_EQ(db.num_transactions(), 500u);
  EXPECT_EQ(db.num_items(), spec.num_items);
}

// Figure 3 reproduction property: the top-300 curves are monotone
// decreasing and span roughly the paper's dynamic ranges.
TEST(Figure3ShapeTest, TopScoresAreMonotoneAndHeavy) {
  Rng rng(9);
  for (const DatasetSpec& spec :
       {BmsPosSpec(), KosarakSpec(), ZipfSpec()}) {
    const ScoreVector scores = GenerateScores(spec, rng);
    const auto top = scores.TopK(300);
    for (size_t i = 1; i < top.size(); ++i) {
      ASSERT_GE(top[i - 1], top[i]) << spec.name << " rank " << i;
    }
    EXPECT_GT(top[0], 1e4) << spec.name;   // head is large (Fig. 3 y-range)
    EXPECT_GT(top[299], 1e2) << spec.name; // rank 300 still substantial
  }
}

}  // namespace
}  // namespace svt
