#include "data/score_vector.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace svt {
namespace {

TEST(ScoreVectorTest, BasicAccessors) {
  ScoreVector v({3.0, 1.0, 2.0});
  EXPECT_EQ(v.size(), 3u);
  EXPECT_FALSE(v.empty());
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v.Total(), 6.0);
  EXPECT_DOUBLE_EQ(v.Max(), 3.0);
}

TEST(ScoreVectorTest, EmptyDefault) {
  ScoreVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_DOUBLE_EQ(v.Total(), 0.0);
}

TEST(ScoreVectorTest, RejectsNegativeScores) {
  EXPECT_DEATH(ScoreVector({1.0, -0.5}), "non-negative");
}

TEST(ScoreVectorTest, SortedDescending) {
  ScoreVector v({3.0, 1.0, 2.0, 5.0});
  EXPECT_EQ(v.SortedDescending(), (std::vector<double>{5.0, 3.0, 2.0, 1.0}));
}

TEST(ScoreVectorTest, TopK) {
  ScoreVector v({3.0, 1.0, 2.0, 5.0});
  EXPECT_EQ(v.TopK(2), (std::vector<double>{5.0, 3.0}));
  EXPECT_EQ(v.TopK(0), std::vector<double>{});
  EXPECT_EQ(v.TopK(4).size(), 4u);
}

TEST(ScoreVectorTest, ShuffledPreservesMultiset) {
  Rng rng(1);
  std::vector<double> base(100);
  for (int i = 0; i < 100; ++i) base[i] = i;
  ScoreVector v(base);
  ScoreVector shuffled = v.Shuffled(rng);
  ASSERT_EQ(shuffled.size(), v.size());
  std::vector<double> sorted(shuffled.scores().begin(),
                             shuffled.scores().end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, base);
}

TEST(ScoreVectorTest, ShuffledActuallyPermutes) {
  Rng rng(2);
  std::vector<double> base(64);
  for (int i = 0; i < 64; ++i) base[i] = i;
  ScoreVector v(base);
  ScoreVector shuffled = v.Shuffled(rng);
  const std::vector<double> after(shuffled.scores().begin(),
                                  shuffled.scores().end());
  EXPECT_NE(after, base);
}

TEST(ScoreVectorTest, PermutedAppliesMapping) {
  ScoreVector v({10.0, 20.0, 30.0});
  const std::vector<uint32_t> perm = {2, 0, 1};
  ScoreVector p = v.Permuted(perm);
  EXPECT_DOUBLE_EQ(p[0], 30.0);
  EXPECT_DOUBLE_EQ(p[1], 10.0);
  EXPECT_DOUBLE_EQ(p[2], 20.0);
}

TEST(ScoreVectorTest, PermutedChecksSize) {
  ScoreVector v({1.0, 2.0});
  const std::vector<uint32_t> bad = {0};
  EXPECT_DEATH(v.Permuted(bad), "SVT_CHECK");
}

}  // namespace
}  // namespace svt
