#include "common/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace svt {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      counter.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool must run every queued task before joining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int slices : {1, 2, 3, 4, 7, 16}) {
    for (int64_t n : {0, 1, 5, 16, 100, 1001}) {
      std::vector<std::atomic<int>> touched(static_cast<size_t>(n));
      for (auto& t : touched) t.store(0);
      ParallelFor(n, slices, [&](int64_t begin, int64_t end, int slice) {
        EXPECT_GE(slice, 0);
        EXPECT_LT(slice, slices);
        for (int64_t i = begin; i < end; ++i) touched[i].fetch_add(1);
      });
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(touched[i].load(), 1) << "n=" << n << " slices=" << slices
                                        << " i=" << i;
      }
    }
  }
}

TEST(ParallelForTest, SliceBoundariesAreDeterministic) {
  // The static split is part of the determinism contract: slice s covers
  // [s*n/W, (s+1)*n/W). Any change here silently reshuffles trials across
  // worker streams in the Monte-Carlo auditor.
  std::vector<std::pair<int64_t, int64_t>> bounds(4);
  ParallelFor(10, 4, [&](int64_t begin, int64_t end, int slice) {
    bounds[slice] = {begin, end};
  });
  EXPECT_EQ(bounds[0], (std::pair<int64_t, int64_t>{0, 2}));
  EXPECT_EQ(bounds[1], (std::pair<int64_t, int64_t>{2, 5}));
  EXPECT_EQ(bounds[2], (std::pair<int64_t, int64_t>{5, 7}));
  EXPECT_EQ(bounds[3], (std::pair<int64_t, int64_t>{7, 10}));
}

TEST(ParallelForTest, MoreSlicesThanWorkAndThanThreads) {
  // 16 slices of 5 elements: most slices are empty but every slice index
  // must still be invoked (per-slice RNG streams key off the index), and
  // slices beyond the pool size must still run.
  std::vector<std::atomic<int>> invoked(16);
  for (auto& v : invoked) v.store(0);
  std::atomic<int64_t> sum{0};
  ParallelFor(5, 16, [&](int64_t begin, int64_t end, int slice) {
    invoked[slice].fetch_add(1);
    sum.fetch_add(end - begin);
  });
  EXPECT_EQ(sum.load(), 5);
  for (int s = 0; s < 16; ++s) ASSERT_EQ(invoked[s].load(), 1) << s;
}

TEST(ParallelForTest, PerSliceRngStreamsAreScheduleIndependent) {
  // The canonical usage pattern: fork one stream per slice up front, index
  // by slice. Two runs must agree bit for bit whatever the interleaving.
  const auto run_once = [] {
    Rng master(77);
    std::vector<Rng> streams;
    for (int s = 0; s < 4; ++s) streams.push_back(master.Fork());
    std::vector<uint64_t> result(4);
    ParallelFor(4000, 4, [&](int64_t begin, int64_t end, int slice) {
      uint64_t acc = 0;
      for (int64_t i = begin; i < end; ++i) acc ^= streams[slice].NextUint64();
      result[slice] = acc;
    });
    return result;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilQueueDrains) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 200);
  pool.WaitIdle();  // idempotent on an idle pool
}

TEST(ThreadPoolTest, OnWorkerThreadDistinguishesWorkers) {
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  ThreadPool pool(1);
  std::atomic<int> inside{-1};
  pool.Submit([&] { inside.store(ThreadPool::OnWorkerThread() ? 1 : 0); });
  pool.WaitIdle();
  EXPECT_EQ(inside.load(), 1);
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

TEST(ParallelForTest, NestedUnderFullySubscribedPoolDoesNotDeadlock) {
  // Every global-pool worker runs a task that itself calls ParallelFor —
  // the request-handler-on-the-pool shape. Before the inline fallback this
  // deadlocked as soon as the pool saturated: the outer tasks held every
  // worker while waiting for slices only those workers could run.
  const int tasks = 2 * ThreadPool::HardwareThreads() + 1;
  std::atomic<int> done{0};
  std::atomic<int64_t> total{0};
  for (int t = 0; t < tasks; ++t) {
    ThreadPool::Global().Submit([&] {
      std::atomic<int64_t> sum{0};
      ParallelFor(1000, 8, [&](int64_t begin, int64_t end, int) {
        for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
      });
      total.fetch_add(sum.load());
      done.fetch_add(1);
    });
  }
  while (done.load() < tasks) std::this_thread::yield();
  EXPECT_EQ(total.load(), static_cast<int64_t>(tasks) * (1000 * 999 / 2));
}

TEST(ParallelForTest, NestedMatchesTopLevelBitwise) {
  // The inline fallback must keep the slice boundaries and indices of the
  // scheduled path so per-slice RNG streams produce identical results.
  const auto run = [](bool nested) {
    Rng master(123);
    std::vector<Rng> streams;
    for (int s = 0; s < 5; ++s) streams.push_back(master.Fork());
    std::vector<uint64_t> result(5);
    const auto work = [&] {
      ParallelFor(997, 5, [&](int64_t begin, int64_t end, int slice) {
        uint64_t acc = 0;
        for (int64_t i = begin; i < end; ++i) {
          acc ^= streams[slice].NextUint64() + static_cast<uint64_t>(i);
        }
        result[slice] = acc;
      });
    };
    if (nested) {
      std::atomic<bool> finished{false};
      ThreadPool::Global().Submit([&] {
        work();
        finished.store(true);
      });
      while (!finished.load()) std::this_thread::yield();
    } else {
      work();
    }
    return result;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(ParallelForTest, ReentrantSequentialCalls) {
  // Back-to-back ParallelFor calls must not interfere through the global
  // pool's queue.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int64_t> sum{0};
    ParallelFor(100, 3, [&](int64_t begin, int64_t end, int) {
      for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
    });
    ASSERT_EQ(sum.load(), 100 * 99 / 2);
  }
}

}  // namespace
}  // namespace svt
