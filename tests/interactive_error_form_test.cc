#include "interactive/error_form.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace svt {
namespace {

SvtOptions CheckerOptions(double epsilon = 1.0, int cutoff = 5) {
  SvtOptions o;
  o.epsilon = epsilon;
  o.sensitivity = 1.0;
  o.cutoff = cutoff;
  return o;
}

TEST(ErrorFormTest, CorrectFormNeverCertifiesRho) {
  Rng rng(1);
  ErrorThresholdChecker checker(CheckerOptions(), ErrorQueryForm::kCorrect,
                                &rng);
  for (int i = 0; i < 100 && !checker.exhausted(); ++i) {
    checker.Check(/*estimate=*/100.0, /*true_answer=*/0.0,
                  /*threshold=*/10.0);
  }
  EXPECT_GT(checker.positives_emitted(), 0);
  // ν is unbounded, so no output certifies anything about ρ.
  EXPECT_FALSE(checker.CertifiedRhoLowerBound().has_value());
}

TEST(ErrorFormTest, BrokenFormLeaksRhoOnFirstPositive) {
  Rng rng(2);
  ErrorThresholdChecker checker(CheckerOptions(), ErrorQueryForm::kBroken,
                                &rng);
  while (!checker.exhausted() && checker.positives_emitted() == 0) {
    checker.Check(100.0, 0.0, 10.0);
  }
  ASSERT_GT(checker.positives_emitted(), 0);
  const auto bound = checker.CertifiedRhoLowerBound();
  ASSERT_TRUE(bound.has_value());
  // §3.4: a positive forces ρ ≥ −T.
  EXPECT_DOUBLE_EQ(*bound, -10.0);
}

TEST(ErrorFormTest, BrokenFormBoundTightensWithHigherThresholds) {
  Rng rng(3);
  ErrorThresholdChecker checker(CheckerOptions(1.0, 10),
                                ErrorQueryForm::kBroken, &rng);
  // Positives at increasing thresholds — the certified bound is the max of
  // the −T values seen on positives... i.e. tightest from the *lowest* T?
  // No: bound per positive is −T, so higher T ⇒ looser; the certificate
  // keeps the max.
  int got = 0;
  for (double t : {50.0, 5.0, 20.0}) {
    // Huge error: essentially always positive.
    if (checker.exhausted()) break;
    const Response r = checker.Check(1e6, 0.0, t);
    if (r.is_positive()) ++got;
  }
  ASSERT_GT(got, 0);
  const auto bound = checker.CertifiedRhoLowerBound();
  ASSERT_TRUE(bound.has_value());
  EXPECT_DOUBLE_EQ(*bound, -5.0);  // the tightest certificate
}

TEST(ErrorFormTest, BothFormsAgreeOnObviousCases) {
  // With error far above threshold both forms say ⊤ almost surely; with
  // error 0 and a high threshold both say ⊥ almost surely.
  Rng rng(4);
  int agree_top = 0, agree_bottom = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    ErrorThresholdChecker correct(CheckerOptions(5.0, 1),
                                  ErrorQueryForm::kCorrect, &rng);
    ErrorThresholdChecker broken(CheckerOptions(5.0, 1),
                                 ErrorQueryForm::kBroken, &rng);
    agree_top += (correct.Check(1000.0, 0.0, 10.0).is_positive() &&
                  broken.Check(1000.0, 0.0, 10.0).is_positive())
                     ? 1
                     : 0;
  }
  for (int t = 0; t < trials; ++t) {
    ErrorThresholdChecker correct(CheckerOptions(5.0, 1),
                                  ErrorQueryForm::kCorrect, &rng);
    ErrorThresholdChecker broken(CheckerOptions(5.0, 1),
                                 ErrorQueryForm::kBroken, &rng);
    agree_bottom += (!correct.Check(50.0, 50.0, 1000.0).is_positive() &&
                     !broken.Check(50.0, 50.0, 1000.0).is_positive())
                        ? 1
                        : 0;
  }
  EXPECT_GT(agree_top, trials * 0.95);
  EXPECT_GT(agree_bottom, trials * 0.95);
}

TEST(ErrorFormTest, FormsDifferNearThreshold) {
  // |e + ν| vs |e| + ν differ materially when the true error is small:
  // the broken form can fire on |ν| alone in both tails, the correct form
  // only on the upper tail of ν.
  Rng rng(5);
  int broken_fires = 0, correct_fires = 0;
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    ErrorThresholdChecker correct(CheckerOptions(0.5, 1),
                                  ErrorQueryForm::kCorrect, &rng);
    ErrorThresholdChecker broken(CheckerOptions(0.5, 1),
                                 ErrorQueryForm::kBroken, &rng);
    correct_fires +=
        correct.Check(0.0, 0.0, 10.0).is_positive() ? 1 : 0;
    broken_fires += broken.Check(0.0, 0.0, 10.0).is_positive() ? 1 : 0;
  }
  // Broken fires roughly twice as often (both noise tails).
  EXPECT_GT(broken_fires, correct_fires * 3 / 2);
}

TEST(ErrorFormTest, RespectsCutoff) {
  Rng rng(6);
  ErrorThresholdChecker checker(CheckerOptions(5.0, 3),
                                ErrorQueryForm::kCorrect, &rng);
  int positives = 0;
  for (int i = 0; i < 100 && !checker.exhausted(); ++i) {
    positives += checker.Check(1e6, 0.0, 1.0).is_positive() ? 1 : 0;
  }
  EXPECT_EQ(positives, 3);
  EXPECT_TRUE(checker.exhausted());
  EXPECT_DEATH(checker.Check(0.0, 0.0, 1.0), "cutoff");
}

TEST(ErrorFormTest, FormAccessor) {
  Rng rng(7);
  ErrorThresholdChecker c(CheckerOptions(), ErrorQueryForm::kCorrect, &rng);
  ErrorThresholdChecker b(CheckerOptions(), ErrorQueryForm::kBroken, &rng);
  EXPECT_EQ(c.form(), ErrorQueryForm::kCorrect);
  EXPECT_EQ(b.form(), ErrorQueryForm::kBroken);
}

}  // namespace
}  // namespace svt
