// Shared RAII guard for cross-dispatch tests: restores the vecmath
// dispatch level on scope exit, so tests compose and a fatal ASSERT inside
// one test body cannot leak a pinned level into every later test of the
// binary (gtest's ASSERT_* return unwinds the stack, so the destructor
// still runs).

#ifndef SPARSEVEC_TESTS_DISPATCH_TEST_UTIL_H_
#define SPARSEVEC_TESTS_DISPATCH_TEST_UTIL_H_

#include "common/vecmath.h"

namespace svt {

class ScopedDispatchLevel {
 public:
  ScopedDispatchLevel() : saved_(vec::ActiveDispatchLevel()) {}
  ~ScopedDispatchLevel() { vec::SetDispatchLevel(saved_); }

  ScopedDispatchLevel(const ScopedDispatchLevel&) = delete;
  ScopedDispatchLevel& operator=(const ScopedDispatchLevel&) = delete;

 private:
  vec::DispatchLevel saved_;
};

}  // namespace svt

#endif  // SPARSEVEC_TESTS_DISPATCH_TEST_UTIL_H_
