// Reproduces Figure 3: the distribution of the 300 highest scores of each
// dataset (log-log rank vs. support).
//
// Prints the series at log-spaced ranks; pass --full for all 300 rows or
// --csv for machine-readable output.

#include <cmath>
#include <iostream>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "data/dataset_spec.h"
#include "data/generators.h"
#include "eval/reporting.h"

int main(int argc, char** argv) {
  int64_t seed = 42;
  double scale = 1.0;
  bool full = false;
  bool csv = false;
  svt::FlagSet flags;
  flags.AddInt64("seed", &seed, "generator seed");
  flags.AddDouble("scale", &scale, "dataset scale fraction in (0,1]");
  flags.AddBool("full", &full, "print all 300 ranks (default: log-spaced)");
  flags.AddBool("csv", &csv, "CSV output: dataset,rank,score");
  SVT_CHECK_OK(flags.Parse(argc, argv));

  const auto specs = svt::AllDatasetSpecs();
  std::vector<std::vector<double>> tops;
  for (const svt::DatasetSpec& base : specs) {
    svt::Rng rng(static_cast<uint64_t>(seed));
    const svt::DatasetSpec spec = svt::ScaledSpec(base, scale);
    const svt::ScoreVector scores = svt::GenerateScores(spec, rng);
    tops.push_back(
        scores.TopK(std::min<size_t>(300, scores.size())));
  }

  std::vector<int> ranks;
  if (full) {
    for (int r = 1; r <= 300; ++r) ranks.push_back(r);
  } else {
    // Log-spaced ranks, like reading points off the paper's log-log plot.
    for (double r = 1.0; r <= 300.0; r *= 1.5) {
      const int rank = static_cast<int>(std::llround(r));
      if (ranks.empty() || ranks.back() != rank) ranks.push_back(rank);
    }
    if (ranks.back() != 300) ranks.push_back(300);
  }

  if (csv) {
    std::cout << "dataset,rank,score\n";
    for (size_t d = 0; d < specs.size(); ++d) {
      for (int r : ranks) {
        if (static_cast<size_t>(r) > tops[d].size()) continue;
        std::cout << specs[d].name << "," << r << "," << tops[d][r - 1]
                  << "\n";
      }
    }
    return 0;
  }

  std::cout << "Figure 3: distribution of the 300 highest scores "
               "(rank vs. support, log-log in the paper)\n\n";
  svt::TablePrinter table(
      {"rank", "AOL", "BMS-POS", "Kosarak", "Zipf"});
  // Column order matches the paper's legend; tops[] is in AllDatasetSpecs
  // order (BMS-POS, Kosarak, AOL, Zipf).
  for (int r : ranks) {
    std::vector<std::string> row = {std::to_string(r)};
    for (size_t col : {size_t{2}, size_t{0}, size_t{1}, size_t{3}}) {
      if (static_cast<size_t>(r) <= tops[col].size()) {
        row.push_back(svt::FormatDouble(tops[col][r - 1], 0));
      } else {
        row.push_back("-");
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\n(expected shape: heavy-tailed, near-linear on log-log "
               "axes; Kosarak/AOL span the widest range)\n";
  return 0;
}
