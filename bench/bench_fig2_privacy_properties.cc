// Reproduces Figure 2: the comparison table of the six SVT variants,
// including the "Privacy Property" row — but measured, not asserted.
//
// For each variant the bench prints its noise parameterization and then an
// empirical privacy section: the maximum |log probability ratio| between
// neighboring datasets, computed in closed form
//   * over all output patterns on a worst-case shift instance, and
//   * on the paper's counterexample family with escalating size m,
// so the ε-DP variants show a plateau at ε and the ∞-DP variants show
// unbounded growth (Theorems 3, 6, 7 and §3.3).

#include <cmath>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "audit/counterexamples.h"
#include "audit/privacy_auditor.h"
#include "common/flags.h"
#include "core/variant_spec.h"
#include "eval/reporting.h"

namespace {

std::string Fmt(double v, int precision = 4) {
  if (std::isinf(v)) return "inf";
  return svt::FormatDouble(v, precision);
}

}  // namespace

int main(int argc, char** argv) {
  double epsilon = 1.0;
  int64_t cutoff = 2;
  svt::FlagSet flags;
  flags.AddDouble("epsilon", &epsilon, "privacy budget for every variant");
  flags.AddInt64("cutoff", &cutoff, "c (max positive outcomes)");
  SVT_CHECK_OK(flags.Parse(argc, argv));
  const int c = static_cast<int>(cutoff);

  using svt::VariantId;
  const std::vector<VariantId> ids = {
      VariantId::kAlg1, VariantId::kAlg2, VariantId::kAlg3,
      VariantId::kAlg4, VariantId::kAlg5, VariantId::kAlg6};

  std::cout << "Figure 2: differences among Algorithms 1-6 (epsilon = "
            << epsilon << ", c = " << c << ")\n\n";

  svt::TablePrinter params({"Algorithm", "eps1", "rho scale", "nu scale",
                            "resample rho", "numeric out", "cutoff",
                            "claimed", "actual (paper)"});
  for (VariantId id : ids) {
    const svt::VariantSpec s = svt::MakeSpec(id, epsilon, 1.0, c);
    params.AddRow(
        {s.name, Fmt(s.budget.epsilon1, 3), Fmt(s.rho_scale, 2),
         Fmt(s.nu_scale, 2), s.resample_rho_after_positive ? "yes" : "no",
         s.output_query_value_on_positive ? "q+nu" : "no",
         s.cutoff.has_value() ? std::to_string(*s.cutoff) : "unbounded",
         "eps-DP",
         s.actual_privacy == svt::PrivacyClass::kPureDp ? "eps-DP"
         : s.actual_privacy == svt::PrivacyClass::kScaledDp
             ? Fmt(s.privacy_scale_factor, 2) + "*eps-DP"
             : "inf-DP"});
  }
  params.Print(std::cout);

  std::cout << "\nMeasured privacy (max |log ratio| between neighbors; "
               "closed-form quadrature):\n\n";

  // (a) ε-DP variants: pattern search over a worst-case shift instance.
  {
    svt::TablePrinter table({"Algorithm", "bound", "measured", "witness"});
    const std::vector<double> qd = {0.0, 0.2, -0.5, 0.8};
    const std::vector<double> up = {1.0, 1.2, 0.5, 1.8};
    const std::vector<double> mixed = {1.0, -0.8, 0.5, 1.8};
    for (VariantId id :
         {VariantId::kAlg1, VariantId::kAlg2, VariantId::kAlg4}) {
      const svt::VariantSpec s = svt::MakeSpec(id, epsilon, 1.0, c);
      double worst = 0.0;
      std::string witness;
      for (const auto& qdp : {up, mixed}) {
        const auto r = svt::MaxAbsLogRatioOverPatterns(s, qd, qdp, 0.1);
        if (r.max_abs_log_ratio > worst) {
          worst = r.max_abs_log_ratio;
          witness = r.argmax_pattern;
        }
      }
      // Alg. 4's stress family gets closer to its (1+6c)/4 bound.
      if (id == VariantId::kAlg4) {
        const auto inst = svt::Alg4StressInstance(c, 12, 80.0);
        const auto rep = svt::AuditInstance(s, inst);
        if (rep.abs_log_ratio() > worst) {
          worst = rep.abs_log_ratio();
          witness = "alg4-stress";
        }
      }
      const double bound = s.actual_privacy == svt::PrivacyClass::kScaledDp
                               ? s.privacy_scale_factor * epsilon
                               : epsilon;
      table.AddRow({s.name, Fmt(bound, 3), Fmt(worst), witness});
    }
    table.Print(std::cout);
  }

  // (b) ∞-DP variants: counterexample families with growing m.
  std::cout << "\nUnbounded families (log-ratio vs. instance size m):\n\n";
  {
    svt::TablePrinter table(
        {"Algorithm", "m=1", "m=2", "m=4", "m=8", "m=12", "theory"});
    const std::vector<int> ms = {1, 2, 4, 8, 12};

    const auto row = [&](const svt::VariantSpec& s, auto make_instance,
                         const std::string& theory) {
      std::vector<std::string> cells = {s.name};
      for (int m : ms) {
        const auto rep = svt::AuditInstance(s, make_instance(m));
        cells.push_back(Fmt(rep.abs_log_ratio(), 3));
      }
      cells.push_back(theory);
      table.AddRow(std::move(cells));
    };

    row(svt::MakeAlg3Spec(epsilon, 1.0, 1),
        [](int m) { return svt::Alg3Counterexample(m); },
        "(m-1)*eps/2");
    row(svt::MakeAlg6Spec(epsilon, 1.0),
        [](int m) { return svt::Alg6Counterexample(m); }, ">= m*eps/2");
    row(svt::MakeGpttSpec(epsilon / 2.0, epsilon / 2.0, 1.0),
        [](int m) { return svt::GpttCounterexample(m); }, "unbounded");
    table.Print(std::cout);
  }

  // (d) Beyond Figure 2: the exponential-noise variants go through the
  // same measured-privacy harness as the ε-DP row.
  std::cout << "\nBeyond Figure 2: exponential-noise variants:\n\n";
  {
    svt::TablePrinter table({"Algorithm", "rho noise", "nu noise", "bound",
                             "measured", "witness"});
    const std::vector<double> qd = {0.0, 0.2, -0.5, 0.8};
    const std::vector<double> up = {1.0, 1.2, 0.5, 1.8};
    const std::vector<double> mixed = {1.0, -0.8, 0.5, 1.8};
    const auto kind_name = [](svt::NoiseKind k) {
      return k == svt::NoiseKind::kExponential ? "Exp" : "Lap";
    };
    for (VariantId id : {VariantId::kExpNoise, VariantId::kRevisited}) {
      const svt::VariantSpec s = svt::MakeSpec(id, epsilon, 1.0, c);
      double worst = 0.0;
      std::string witness;
      for (const auto& qdp : {up, mixed}) {
        const auto r = svt::MaxAbsLogRatioOverPatterns(s, qd, qdp, 0.1);
        if (r.max_abs_log_ratio > worst) {
          worst = r.max_abs_log_ratio;
          witness = r.argmax_pattern;
        }
      }
      table.AddRow({s.name, kind_name(s.rho_kind), kind_name(s.nu_kind),
                    Fmt(epsilon, 3), Fmt(worst), witness});
    }
    table.Print(std::cout);
  }

  // (c) Alg. 5: the ratio is literally infinite on a 2-query instance.
  {
    const svt::VariantSpec s = svt::MakeAlg5Spec(epsilon, 1.0);
    const auto rep = svt::AuditInstance(s, svt::Alg5Counterexample());
    std::cout << "\n" << s.name << " on Theorem 3's instance: Pr[D] = e^"
              << Fmt(rep.log_p_d, 3) << ", Pr[D'] = "
              << (std::isinf(rep.log_p_dprime) ? "0 (exactly)" : "nonzero")
              << "  =>  ratio is "
              << (rep.infinite() ? "INFINITE (not eps'-DP for any eps')"
                                 : "bounded")
              << "\n";
  }

  return 0;
}
