// Reproduces Figure 5: comparison of non-interactive approaches —
// SVT-S-1:c^{2/3}, SVT-ReTr-1:c^{2/3} with threshold boosts 1D..5D, and
// the Exponential Mechanism — on the four Table 1 score distributions.
//
// Paper-expected shape: EM best everywhere; retraversal with a good boost
// clearly improves plain SVT-S but never beats EM; the best boost value
// depends on the dataset and c (e.g. 5D good for Zipf and for Kosarak/AOL
// at large c).

#include <iostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "data/dataset_io.h"
#include "data/queries.h"
#include "data/dataset_spec.h"
#include "data/generators.h"
#include "eval/experiment.h"
#include "eval/reporting.h"

int main(int argc, char** argv) {
  int64_t runs = 10;
  int64_t seed = 42;
  double epsilon = 0.1;
  double scale = 1.0;
  double aol_scale = 0.05;
  std::string fimi;
  bool csv = false;
  svt::FlagSet flags;
  flags.AddInt64("runs", &runs, "randomized-order repetitions (paper: 100)");
  flags.AddInt64("seed", &seed, "experiment seed");
  flags.AddDouble("epsilon", &epsilon, "privacy budget (paper: 0.1)");
  flags.AddDouble("scale", &scale,
                  "scale fraction applied to every dataset (1 = Table 1)");
  flags.AddDouble("aol_scale", &aol_scale,
                  "extra scale for AOL's 2.29M items (1 = full size)");
  flags.AddString("fimi", &fimi,
                  "path to a real FIMI transaction file (e.g. the actual "
                  "BMS-POS/Kosarak); replaces the synthetic datasets");
  flags.AddBool("csv", &csv, "emit CSV instead of tables");
  SVT_CHECK_OK(flags.Parse(argc, argv));

  svt::SweepConfig sweep;
  sweep.epsilon = epsilon;
  sweep.runs = static_cast<int>(runs);
  sweep.seed = static_cast<uint64_t>(seed);
  sweep.monotonic = true;

  // Workloads: the four synthetic Table 1 stand-ins, or one real file.
  struct Workload {
    std::string name;
    svt::ScoreVector scores;
  };
  std::vector<Workload> workloads;
  if (!fimi.empty()) {
    const auto db = svt::LoadFimiTransactions(fimi);
    SVT_CHECK(db.ok()) << db.status();
    const auto supports = svt::EvaluateAllItemSupports(*db);
    workloads.push_back({fimi, svt::ScoreVector(supports)});
  } else {
    for (const svt::DatasetSpec& base : svt::AllDatasetSpecs()) {
      double fraction = scale;
      if (base.name == "AOL") fraction = scale * aol_scale;
      const svt::DatasetSpec spec = svt::ScaledSpec(base, fraction);
      svt::Rng gen_rng(static_cast<uint64_t>(seed));
      workloads.push_back({spec.name, svt::GenerateScores(spec, gen_rng)});
    }
  }

  const auto methods = svt::Figure5Methods();
  bool first = true;
  for (const Workload& workload : workloads) {
    const svt::ScoreVector& scores = workload.scores;
    // Small real files may not support the full c sweep.
    svt::SweepConfig ws = sweep;
    std::erase_if(ws.c_values, [&](int c) {
      return static_cast<size_t>(c) >= scores.size();
    });
    SVT_CHECK(!ws.c_values.empty())
        << workload.name << ": too few items for any c in the sweep";
    const auto series =
        svt::RunSelectionSweep(scores, ws, methods).value();
    if (csv) {
      svt::WriteSeriesCsv(std::cout, workload.name, ws.c_values, series,
                          svt::Metric::kSer, first);
      svt::WriteSeriesCsv(std::cout, workload.name, ws.c_values, series,
                          svt::Metric::kFnr, false);
      first = false;
    } else {
      svt::PrintSeriesTable(std::cout,
                            "Figure 5 (" + workload.name + "), SER, eps=" +
                                svt::FormatDouble(epsilon, 2),
                            ws.c_values, series, svt::Metric::kSer);
      std::cout << "\n";
      svt::PrintSeriesTable(std::cout,
                            "Figure 5 (" + workload.name + "), FNR, eps=" +
                                svt::FormatDouble(epsilon, 2),
                            ws.c_values, series, svt::Metric::kFnr);
      std::cout << "\n";
    }
  }
  if (!csv) {
    std::cout << "(expected: EM dominates; SVT-ReTr with a well-chosen "
                 "boost improves on plain SVT-S but does not beat EM — "
                 "Figure 5 of the paper)\n";
  }
  return 0;
}
