// Micro-benchmarks (google-benchmark): throughput of the primitives the
// experiments stress — noise sampling, SVT streaming, EM top-c selection,
// dataset generation and FP-growth.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "audit/closed_form.h"
#include "audit/monte_carlo.h"
#include "common/distributions.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/vecmath.h"
#include "core/batch_runner.h"
#include "core/exponential_mechanism.h"
#include "core/svt.h"
#include "core/svt_retraversal.h"
#include "core/svt_variants.h"
#include "data/bound_prefilter.h"
#include "data/fpgrowth.h"
#include "data/generators.h"

namespace svt {
namespace {

void BM_RngNextDouble(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextDouble());
  }
}
BENCHMARK(BM_RngNextDouble);

void BM_LaplaceSample(benchmark::State& state) {
  Rng rng(2);
  const Laplace d(0.0, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.Sample(rng));
  }
}
BENCHMARK(BM_LaplaceSample);

void BM_RngFillUint64(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint64_t> buf(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    rng.FillUint64(buf);
    benchmark::DoNotOptimize(buf.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RngFillUint64)->Arg(4096);

void BM_LaplaceSampleBlock(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> buf(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    SampleLaplaceBlock(rng, 2.0, buf);
    benchmark::DoNotOptimize(buf.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LaplaceSampleBlock)->Arg(4096);

void BM_GumbelSampleBlock(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> buf(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    SampleGumbelBlock(rng, buf);
    benchmark::DoNotOptimize(buf.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GumbelSampleBlock)->Arg(4096);

void BM_GumbelSample(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleGumbel(rng));
  }
}
BENCHMARK(BM_GumbelSample);

void BM_AliasSample(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> weights(state.range(0));
  for (size_t i = 0; i < weights.size(); ++i) weights[i] = 1.0 / (i + 1.0);
  AliasSampler sampler(std::move(weights));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
}
BENCHMARK(BM_AliasSample)->Arg(1000)->Arg(100000);

void BM_SvtProcess(benchmark::State& state) {
  Rng rng(5);
  SvtOptions o;
  o.epsilon = 0.1;
  o.cutoff = 1 << 20;  // effectively no abort during the benchmark
  o.monotonic = true;
  auto mech = SparseVector::Create(o, &rng).value();
  // The query noise scale is ~2e7 here (c is huge), so the answer must sit
  // far below the threshold for the ⊥ hot path to dominate.
  double q = -1e12;
  for (auto _ : state) {
    if (mech->exhausted()) mech->Reset();
    benchmark::DoNotOptimize(mech->Process(q, 0.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SvtProcess);

void BM_SvtRunBatch(benchmark::State& state) {
  // Same mechanism parameterization and ⊥-dominated workload as
  // BM_SvtProcess, but through the chunked batch engine: the acceptance
  // target is ≥ 3× the scalar items/sec at 10⁶ queries.
  Rng rng(5);
  SvtOptions o;
  o.epsilon = 0.1;
  o.cutoff = 1 << 20;
  o.monotonic = true;
  auto mech = SparseVector::Create(o, &rng).value();
  const std::vector<double> answers(static_cast<size_t>(state.range(0)),
                                    -1e12);
  std::vector<Response> out;
  for (auto _ : state) {
    out.clear();  // keeps capacity: a batch server reuses its buffers
    mech->RunAppend(answers, 0.0, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SvtRunBatch)->Arg(1 << 20);

/// RAII kernel-mode override for the paired megakernel-vs-composition
/// benchmarks: same binary, same workload, two registered names — the
/// interleaved A/B mode of scripts/record_bench.sh alternates the two
/// filter sets rep by rep so drift hits both arms equally.
class ScopedKernelModeBench {
 public:
  explicit ScopedKernelModeBench(BatchKernelMode mode)
      : saved_(ActiveBatchKernelMode()) {
    SetBatchKernelMode(mode);
  }
  ~ScopedKernelModeBench() { SetBatchKernelMode(saved_); }

 private:
  BatchKernelMode saved_;
};

void RunBatchNearThresholdBody(benchmark::State& state,
                               BatchKernelMode mode) {
  // The tier-2-bound regime: every answer within a few ν scales of the
  // threshold, so the tier-1 chunk bound can never prove a chunk ⊥ and
  // every ν word goes through the transform kernels. This is the workload
  // the vecmath layer exists for; the PR-3 acceptance target is ≥ 2× the
  // PR-1 scalar-libm-log baseline here, and the PR-8 megakernel target is
  // ≥ 1.3× the composition arm at 1M queries on AVX-512.
  ScopedKernelModeBench scoped(mode);
  Rng rng(5);
  SvtOptions o;
  o.epsilon = 0.1;
  o.cutoff = 1 << 20;
  o.monotonic = true;
  auto mech = SparseVector::Create(o, &rng).value();
  const double nu_scale = mech->query_noise_scale();
  std::vector<double> answers(static_cast<size_t>(state.range(0)));
  Rng gen(7);
  for (double& a : answers) {
    a = (-6.0 + (gen.NextDouble() - 0.5)) * nu_scale;  // rare positives
  }
  std::vector<Response> out;
  for (auto _ : state) {
    mech->Reset();  // clears the rare positives' cutoff progress
    out.clear();
    mech->RunAppend(answers, 0.0, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(vec::DispatchLevelName(vec::ActiveDispatchLevel()));
}

void BM_SvtRunBatchNearThreshold(benchmark::State& state) {
  RunBatchNearThresholdBody(state, BatchKernelMode::kMegakernel);
}
// 65536 queries keep every buffer the composition arm touches L1/L2
// resident, isolating the in-register win from the memory-traffic win
// visible at 1M (where the scratch word block streams through cache).
BENCHMARK(BM_SvtRunBatchNearThreshold)->Arg(1 << 20)->Arg(65536);

void BM_SvtRunBatchNearThresholdComposition(benchmark::State& state) {
  RunBatchNearThresholdBody(state, BatchKernelMode::kComposition);
}
BENCHMARK(BM_SvtRunBatchNearThresholdComposition)->Arg(1 << 20)->Arg(65536);

void BM_SvtRunBatchNearThresholdPrefiltered(benchmark::State& state) {
  // Paired arm of BM_SvtRunBatchNearThreshold: identical workload and
  // stream, with the quantized bound prefilter attached (built once,
  // outside the timed region — it is a property of the score vector, not
  // of the run). The exported counters are the in-process A/B the
  // two-level prefilter is judged by: bound_mb_per_iter against the
  // unprefiltered arm's 8-bytes-per-element pass, and prune_rate as the
  // fraction of span visits the quantized level discharged.
  ScopedKernelModeBench scoped(BatchKernelMode::kMegakernel);
  Rng rng(5);
  SvtOptions o;
  o.epsilon = 0.1;
  o.cutoff = 1 << 20;
  o.monotonic = true;
  auto mech = SparseVector::Create(o, &rng).value();
  const double nu_scale = mech->query_noise_scale();
  std::vector<double> answers(static_cast<size_t>(state.range(0)));
  Rng gen(7);
  for (double& a : answers) {
    a = (-6.0 + (gen.NextDouble() - 0.5)) * nu_scale;
  }
  const BoundPrefilter prefilter = BoundPrefilter::Build(answers);
  std::vector<Response> out;
  for (auto _ : state) {
    mech->Reset();
    out.clear();
    mech->RunAppend(answers, 0.0, &prefilter, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  // Reset() zeroes the counters, so batch_stats() holds exactly the last
  // iteration's run — per-iteration numbers with no division by count.
  const BatchRunStats& st = mech->batch_stats();
  state.counters["bound_mb_per_iter"] =
      static_cast<double>(st.bound_bytes_touched) / (1024.0 * 1024.0);
  const double span_visits = static_cast<double>(
      st.tier2_spans_skipped + st.tier2_fused_segments);
  state.counters["prune_rate"] =
      span_visits > 0.0
          ? static_cast<double>(st.bound_spans_pruned_q) / span_visits
          : 0.0;
  state.SetLabel(vec::DispatchLevelName(vec::ActiveDispatchLevel()));
}
BENCHMARK(BM_SvtRunBatchNearThresholdPrefiltered)->Arg(1 << 20)->Arg(65536);

void BM_QuantizedSpanBound(benchmark::State& state) {
  // The quantized span reduction in isolation: QuantizedSpanMax over
  // kBoundSpan-sized uint16 code spans (the generic width; uint8 halves
  // the traffic again). Pair with BM_FullPrecisionSpanBound on the same
  // element count for the raw bound-pass traffic ratio.
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint16_t> codes(n);
  Rng gen(9);
  for (uint16_t& c : codes) {
    c = static_cast<uint16_t>(gen.NextUint64() & 0xffff);
  }
  uint16_t acc = 0;
  for (auto _ : state) {
    for (size_t s = 0; s < n; s += BatchRunner::kBoundSpan) {
      acc = std::max(
          acc, vec::QuantizedSpanMax({codes.data() + s,
                                      BatchRunner::kBoundSpan}));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(n * sizeof(uint16_t)));
  state.SetLabel(vec::DispatchLevelName(vec::ActiveDispatchLevel()));
}
BENCHMARK(BM_QuantizedSpanBound)->Arg(1 << 20);

void BM_FullPrecisionSpanBound(benchmark::State& state) {
  // The pre-refactor bound pass: vec::MaxBlock over the same spans at 8
  // bytes per element.
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> a(n);
  Rng gen(9);
  gen.FillDouble(a);
  double acc = 0.0;
  for (auto _ : state) {
    for (size_t s = 0; s < n; s += BatchRunner::kBoundSpan) {
      acc = std::max(acc,
                     vec::MaxBlock({a.data() + s, BatchRunner::kBoundSpan}));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(n * sizeof(double)));
  state.SetLabel(vec::DispatchLevelName(vec::ActiveDispatchLevel()));
}
BENCHMARK(BM_FullPrecisionSpanBound)->Arg(1 << 20);

void RunBatchPerQueryNearThresholdBody(benchmark::State& state,
                                       BatchKernelMode mode) {
  // The per-query-threshold generalization of the near-threshold workload:
  // every answer AND every bar within a few ν scales, so chunks always run
  // tier-2 (no tier-1 bound is sound with per-query bars) and the
  // pairwise fused scan does the finding. The PR-4 acceptance target is
  // ≥ 2× the PR-3 scalar-scan baseline here.
  ScopedKernelModeBench scoped(mode);
  Rng rng(5);
  SvtOptions o;
  o.epsilon = 0.1;
  o.cutoff = 1 << 20;
  o.monotonic = true;
  auto mech = SparseVector::Create(o, &rng).value();
  const double nu_scale = mech->query_noise_scale();
  std::vector<double> answers(static_cast<size_t>(state.range(0)));
  std::vector<double> thresholds(answers.size());
  Rng gen(7);
  for (size_t i = 0; i < answers.size(); ++i) {
    answers[i] = (-6.0 + (gen.NextDouble() - 0.5)) * nu_scale;
    thresholds[i] = (gen.NextDouble() - 0.5) * nu_scale;
  }
  std::vector<Response> out;
  for (auto _ : state) {
    mech->Reset();
    out.clear();
    mech->RunAppend(answers, thresholds, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  // Reset() zeroes the counters, so this is the last iteration's run: the
  // fraction of per-query elements whose transform the span skip words
  // discharged — identical in both modes by the counter's contract, and
  // the quantity the PR-10 pairwise-bounded kernels monetize.
  state.counters["words_skipped_frac"] =
      static_cast<double>(mech->batch_stats().mega_words_skipped_q) /
      static_cast<double>(state.range(0));
  state.SetLabel(vec::DispatchLevelName(vec::ActiveDispatchLevel()));
}

void BM_SvtRunBatchPerQueryNearThreshold(benchmark::State& state) {
  RunBatchPerQueryNearThresholdBody(state, BatchKernelMode::kMegakernel);
}
BENCHMARK(BM_SvtRunBatchPerQueryNearThreshold)->Arg(1 << 20)->Arg(65536);

void BM_SvtRunBatchPerQueryNearThresholdComposition(
    benchmark::State& state) {
  RunBatchPerQueryNearThresholdBody(state, BatchKernelMode::kComposition);
}
BENCHMARK(BM_SvtRunBatchPerQueryNearThresholdComposition)
    ->Arg(1 << 20)
    ->Arg(65536);

void RunBatchResampleNearThresholdBody(benchmark::State& state,
                                       BatchKernelMode mode) {
  // RevSVT-style resample-heavy regime: ρ is redrawn after every positive,
  // so tier-2 resumes re-enter mid-chunk under a moved bar — many times
  // per chunk at this positive rate (~e⁻⁴/2 per query). Before PR 10 the
  // megakernel arm's cached fused-scan hits were unusable under any bar
  // move and every resume regenerated from span checkpoints; now upward
  // moves replay the cache with exact revalidation and only downward
  // moves rebuild. The paired composition arm rescans its scratch words
  // from the resume point either way.
  ScopedKernelModeBench scoped(mode);
  Rng rng(5);
  SvtOptions o;
  o.epsilon = 0.1;
  o.cutoff = 1 << 20;
  o.monotonic = true;
  o.resample_threshold_noise = true;
  auto mech = SparseVector::Create(o, &rng).value();
  const double nu_scale = mech->query_noise_scale();
  std::vector<double> answers(static_cast<size_t>(state.range(0)));
  Rng gen(7);
  for (double& a : answers) {
    a = (-4.0 + (gen.NextDouble() - 0.5)) * nu_scale;  // frequent positives
  }
  std::vector<Response> out;
  for (auto _ : state) {
    mech->Reset();
    out.clear();
    mech->RunAppend(answers, 0.0, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  // Resumes that re-entered under a moved ρ, per iteration (Reset()
  // zeroes the counters): the volume the cached replay now absorbs.
  state.counters["rederivations_per_iter"] = static_cast<double>(
      mech->batch_stats().replay_rederivations);
  state.SetLabel(vec::DispatchLevelName(vec::ActiveDispatchLevel()));
}

void BM_SvtRunBatchResampleNearThreshold(benchmark::State& state) {
  RunBatchResampleNearThresholdBody(state, BatchKernelMode::kMegakernel);
}
BENCHMARK(BM_SvtRunBatchResampleNearThreshold)->Arg(1 << 20)->Arg(65536);

void BM_SvtRunBatchResampleNearThresholdComposition(
    benchmark::State& state) {
  RunBatchResampleNearThresholdBody(state, BatchKernelMode::kComposition);
}
BENCHMARK(BM_SvtRunBatchResampleNearThresholdComposition)
    ->Arg(1 << 20)
    ->Arg(65536);

void RunBatchExpNoiseBody(benchmark::State& state, double offset) {
  // The near-threshold workload on the exponential-noise axis: one RNG word
  // per ν variate (not two) and the fused/mega exp scan kernels in tier 2.
  Rng rng(5);
  auto mech =
      ExpNoiseSvt::Create(0.1, 1.0, /*cutoff=*/1 << 20, &rng).value();
  const double nu_scale = mech->spec().nu_scale;
  std::vector<double> answers(static_cast<size_t>(state.range(0)));
  Rng gen(7);
  for (double& a : answers) {
    a = (offset + (gen.NextDouble() - 0.5)) * nu_scale;  // rare positives
  }
  std::vector<Response> out;
  for (auto _ : state) {
    mech->Reset();
    out.clear();
    mech->RunAppend(answers, 0.0, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(vec::DispatchLevelName(vec::ActiveDispatchLevel()));
}

void BM_SvtRunBatchExpNoise(benchmark::State& state) {
  // Answers 3 ν scales under: hotter than the Laplace near-threshold bench
  // (positive rate ~e⁻³ vs ~e⁻⁶), kept for continuity with the PR-7
  // record — compare against BM_SvtRunBatchExpNoiseNearThreshold, not
  // BM_SvtRunBatchNearThreshold.
  RunBatchExpNoiseBody(state, -3.0);
}
BENCHMARK(BM_SvtRunBatchExpNoise)->Arg(1 << 20);

void BM_SvtRunBatchExpNoiseNearThreshold(benchmark::State& state) {
  // Positive rate matched to BM_SvtRunBatchNearThreshold (answers 6 ν
  // scales under, ~e⁻⁶ exceedance) so the Laplace-vs-exponential A/B
  // compares kernels, not workload mix: both arms skip the same fraction
  // of spans and take the slow positive path equally often.
  RunBatchExpNoiseBody(state, -6.0);
}
BENCHMARK(BM_SvtRunBatchExpNoiseNearThreshold)->Arg(1 << 20)->Arg(65536);

void BM_FusedExpScanSumGe(benchmark::State& state) {
  // The fused exponential tier-2 kernel alone over a no-match stream — the
  // single-word-per-variate counterpart of the Laplace pairwise scan below.
  Rng rng(12);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> words(n);
  std::vector<double> answers(n);
  rng.FillUint64(words);
  rng.FillDouble(answers);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vec::FusedExpScanSumGe(words, 2.0, answers, 1e9).index);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(vec::DispatchLevelName(vec::ActiveDispatchLevel()));
}
BENCHMARK(BM_FusedExpScanSumGe)->Arg(4096);

void BM_FusedLaplaceScanSumGePairwise(benchmark::State& state) {
  // The fused tier-2 kernel alone (sample + transform + compare in one
  // register pass) over a no-match stream: the per-query batch engine's
  // inner loop with the RNG fill and chunk bookkeeping stripped away.
  Rng rng(12);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> words(2 * n);
  std::vector<double> answers(n), bars(n, 1e9);
  rng.FillUint64(words);
  rng.FillDouble(answers);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vec::FusedLaplaceScanSumGePairwise(words, 0.0, 2.0, answers, bars,
                                           0.0)
            .index);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(vec::DispatchLevelName(vec::ActiveDispatchLevel()));
}
BENCHMARK(BM_FusedLaplaceScanSumGePairwise)->Arg(4096);

void BM_MegaLaplaceScanSumGe(benchmark::State& state) {
  // The lane-resident generate-and-scan megakernel alone over a no-match
  // stream: the composition baseline is BM_RngFillUint64 (at 2× the arg)
  // plus BM_FusedLaplaceScanSumGePairwise. The state copy per iteration is
  // 17 words — noise next to the 4096-element scan.
  Rng rng(12);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> answers(n);
  rng.FillDouble(answers);
  const BlockRng::State start = rng.state();
  for (auto _ : state) {
    BlockRng::State st = start;
    benchmark::DoNotOptimize(
        vec::MegaLaplaceScanSumGe(&st, 0.0, 2.0, answers, 1e9).index);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(vec::DispatchLevelName(vec::ActiveDispatchLevel()));
}
BENCHMARK(BM_MegaLaplaceScanSumGe)->Arg(4096);

void BM_VecLogBlock(benchmark::State& state) {
  Rng rng(11);
  std::vector<double> in(static_cast<size_t>(state.range(0)));
  std::vector<double> out(in.size());
  rng.FillDoublePositive(in);
  for (auto _ : state) {
    vec::LogBlock(in, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(vec::DispatchLevelName(vec::ActiveDispatchLevel()));
}
BENCHMARK(BM_VecLogBlock)->Arg(4096);

void BM_LibmLogLoop(benchmark::State& state) {
  // The libm baseline BM_VecLogBlock is measured against.
  Rng rng(11);
  std::vector<double> in(static_cast<size_t>(state.range(0)));
  std::vector<double> out(in.size());
  rng.FillDoublePositive(in);
  for (auto _ : state) {
    for (size_t i = 0; i < in.size(); ++i) out[i] = std::log(in[i]);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LibmLogLoop)->Arg(4096);

void BM_McSerial(benchmark::State& state) {
  // Legacy serial Monte-Carlo loop (num_workers = 1): the baseline for
  // BM_McParallel.
  Rng rng(14);
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 2);
  const std::vector<double> answers = {0.5, -0.5, 0.2, 0.9};
  McOptions o;
  o.trials = 1 << 15;
  o.num_workers = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EstimateOutputProbability(spec, answers, 0.0, "_T_T", rng, o));
  }
  state.SetItemsProcessed(state.iterations() * o.trials);
}
BENCHMARK(BM_McSerial);

void BM_McParallel(benchmark::State& state) {
  Rng rng(14);
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 2);
  const std::vector<double> answers = {0.5, -0.5, 0.2, 0.9};
  McOptions o;
  o.trials = 1 << 15;
  o.num_workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EstimateOutputProbability(spec, answers, 0.0, "_T_T", rng, o));
  }
  state.SetItemsProcessed(state.iterations() * o.trials);
}
BENCHMARK(BM_McParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_EmTopC(benchmark::State& state) {
  Rng rng(6);
  const size_t n = static_cast<size_t>(state.range(0));
  const int c = static_cast<int>(state.range(1));
  std::vector<double> scores(n);
  for (size_t i = 0; i < n; ++i) scores[i] = static_cast<double>(n - i);
  EmOptions o;
  o.epsilon = 0.1;
  o.num_selections = c;
  o.monotonic = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExponentialMechanism::SelectTopC(scores, o, rng).value());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EmTopC)->Args({10000, 100})->Args({100000, 300});

void BM_EmSequentialTopC(benchmark::State& state) {
  Rng rng(7);
  const size_t n = static_cast<size_t>(state.range(0));
  const int c = static_cast<int>(state.range(1));
  std::vector<double> scores(n);
  for (size_t i = 0; i < n; ++i) scores[i] = static_cast<double>(n - i);
  EmOptions o;
  o.epsilon = 0.1;
  o.num_selections = c;
  o.monotonic = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExponentialMechanism::SelectTopCSequential(scores, o, rng).value());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EmSequentialTopC)->Args({10000, 100});

void BM_SvtSelection(benchmark::State& state) {
  Rng rng(8);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> scores(n);
  for (size_t i = 0; i < n; ++i) scores[i] = static_cast<double>(n - i);
  SvtOptions o;
  o.epsilon = 0.1;
  o.cutoff = 100;
  o.monotonic = true;
  o.allocation = BudgetAllocation::Optimal(100, true);
  const double threshold = scores[100];
  for (auto _ : state) {
    auto mech = SparseVector::Create(o, &rng).value();
    size_t selected = 0;
    for (size_t i = 0; i < n && !mech->exhausted(); ++i) {
      selected += mech->Process(scores[i], threshold).is_positive();
    }
    benchmark::DoNotOptimize(selected);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SvtSelection)->Arg(10000)->Arg(100000);

void BM_GenerateScores(benchmark::State& state) {
  DatasetSpec spec = ZipfSpec();
  spec.num_items = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    Rng rng(9);
    benchmark::DoNotOptimize(GenerateScores(spec, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateScores)->Arg(10000)->Arg(100000);

void BM_FpGrowth(benchmark::State& state) {
  Rng rng(10);
  std::vector<double> profile(50);
  for (int i = 0; i < 50; ++i) profile[i] = 1000.0 / (i + 1);
  const TransactionDb db =
      GenerateTransactions(ScoreVector(profile), 2000, rng);
  FpGrowthOptions o;
  o.min_support = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineFrequentItemsets(db, o));
  }
}
BENCHMARK(BM_FpGrowth)->Arg(100)->Arg(30);

void BM_ClosedFormAudit(benchmark::State& state) {
  // Cost of one closed-form output probability (the audit's inner loop).
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 2);
  const std::vector<double> q = {0.5, -0.5, 0.2, 0.9};
  const std::vector<OutputEvent> pattern = PatternFromString("_T_T");
  for (auto _ : state) {
    benchmark::DoNotOptimize(LogOutputProbability(spec, q, 0.0, pattern));
  }
}
BENCHMARK(BM_ClosedFormAudit);

}  // namespace
}  // namespace svt
