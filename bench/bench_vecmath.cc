// Standalone micro-benchmark for the vecmath kernel family: libm baseline
// vs the scalar reference lane vs the dispatched block kernels, at every
// dispatch level this host supports (scalar / AVX2 / AVX-512). Also times
// the fused Laplace transform (the batch engine's tier-2 inner loop), the
// lockstep block RNG behind every Fill/SampleBlock path, and the pairwise
// per-query-threshold scan.
//
// Informational (always exits 0): the hard acceptance number — tier-2
// batch throughput — lives in bench_micro's BM_SvtRunBatchNearThreshold
// and is recorded in BENCH_micro.json. CI smoke-runs this binary at both
// dispatch levels to keep the kernels and the dispatch plumbing honest.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/distributions.h"
#include "common/rng.h"
#include "common/vecmath.h"

namespace {

using svt::Rng;

template <typename F>
double BestNsPerElem(F&& f, size_t n, int reps = 9) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best / static_cast<double>(n) * 1e9;
}

volatile double g_sink;

}  // namespace

int main() {
  using namespace svt::vec;
  constexpr size_t kN = 1 << 16;

  std::printf("vecmath micro-benchmark (%zu elements/pass, %u hw threads)\n",
              kN, std::thread::hardware_concurrency());
  std::printf("supported levels: scalar%s%s\n",
              DispatchLevelSupported(DispatchLevel::kAvx2) ? " avx2" : "",
              DispatchLevelSupported(DispatchLevel::kAvx512) ? " avx512" : "");
  std::printf("active level at startup: %s\n\n",
              DispatchLevelName(ActiveDispatchLevel()));

  Rng rng(1);
  std::vector<double> u(kN), out(kN), xs(kN);
  std::vector<uint64_t> words(2 * kN);
  rng.FillDoublePositive(u);
  rng.FillUint64(words);
  for (size_t i = 0; i < kN; ++i) xs[i] = 700.0 * (u[i] - 0.5);

  const double libm_log = BestNsPerElem(
      [&] {
        for (size_t i = 0; i < kN; ++i) out[i] = std::log(u[i]);
        g_sink = out[kN / 2];
      },
      kN);
  const double libm_exp = BestNsPerElem(
      [&] {
        for (size_t i = 0; i < kN; ++i) out[i] = std::exp(xs[i]);
        g_sink = out[kN / 2];
      },
      kN);
  const double scalar_log = BestNsPerElem(
      [&] {
        for (size_t i = 0; i < kN; ++i) out[i] = Log(u[i]);
        g_sink = out[kN / 2];
      },
      kN);
  std::printf("log:  libm %.2f ns/elem | vec::Log scalar %.2f ns/elem\n",
              libm_log, scalar_log);
  std::printf("exp:  libm %.2f ns/elem\n", libm_exp);

  const svt::Laplace lap(0.0, 2.0);
  for (DispatchLevel level : kAllDispatchLevels) {
    if (!SetDispatchLevel(level)) continue;
    const char* name = DispatchLevelName(level);
    const double log_block = BestNsPerElem(
        [&] {
          LogBlock(u, out);
          g_sink = out[kN / 2];
        },
        kN);
    const double exp_block = BestNsPerElem(
        [&] {
          ExpBlock(xs, out);
          g_sink = out[kN / 2];
        },
        kN);
    const double neg_log = BestNsPerElem(
        [&] {
          NegLogUnitPositiveBlock(words, 2, out);
          g_sink = out[kN / 2];
        },
        kN);
    const double lap_tf = BestNsPerElem(
        [&] {
          lap.TransformBlock(words, out);
          g_sink = out[kN / 2];
        },
        kN);
    const double lap_sample = BestNsPerElem(
        [&] {
          lap.SampleBlock(rng, out);
          g_sink = out[kN / 2];
        },
        kN);
    // Lockstep block RNG (feeds every SampleBlock path).
    std::vector<uint64_t> rng_buf(kN);
    Rng fill_rng(3);
    const double rng_fill = BestNsPerElem(
        [&] {
          fill_rng.FillUint64(rng_buf);
          g_sink = static_cast<double>(rng_buf[kN / 2] >> 12);
        },
        kN);
    // Pairwise per-query-threshold scan over a no-match stream (the
    // ⊥-dominated regime the batch engine scans in).
    std::vector<double> bars(kN, 1e9);
    const double pairwise = BestNsPerElem(
        [&] {
          g_sink = static_cast<double>(
              FindFirstSumGePairwise({u.data(), kN}, {out.data(), kN},
                                     {bars.data(), kN}, 0.0));
        },
        kN);
    // Fused single-pass sample-and-scan vs its unfused composition
    // (TransformBlock + pairwise scan) over the same no-match stream —
    // the batch engine's tier-2 inner loop before and after fusion.
    const double unfused_scan = BestNsPerElem(
        [&] {
          lap.TransformBlock(words, out);
          g_sink = static_cast<double>(
              FindFirstSumGePairwise({u.data(), kN}, {out.data(), kN},
                                     {bars.data(), kN}, 0.0));
        },
        kN);
    const double fused_scan = BestNsPerElem(
        [&] {
          g_sink = static_cast<double>(
              FusedLaplaceScanSumGePairwise(words, 0.0, 2.0, {u.data(), kN},
                                            {bars.data(), kN}, 0.0)
                  .index);
        },
        kN);
    std::printf(
        "[%6s] LogBlock %.2f | ExpBlock %.2f | NegLogUnit %.2f | "
        "LaplaceTransform %.2f | SampleBlock %.2f | RngFill %.2f | "
        "PairwiseScan %.2f ns/elem (log speedup vs libm: %.2fx)\n",
        name, log_block, exp_block, neg_log, lap_tf, lap_sample, rng_fill,
        pairwise, libm_log / log_block);
    std::printf(
        "[%6s] fused sample-and-scan %.2f vs unfused transform+scan %.2f "
        "ns/elem (%.2fx)\n",
        name, fused_scan, unfused_scan, unfused_scan / fused_scan);
  }
  return 0;
}
