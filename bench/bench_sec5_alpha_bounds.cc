// Reproduces §5's analytical SVT-vs-EM comparison (c = Δ = 1):
//
//   α_SVT = 8 (ln k + ln(2/β)) / ε          (Thm 3.24 of Dwork-Roth)
//   α_EM  = (ln(k−1) + ln((1−β)/β)) / ε
//
// and the paper's observation that α_EM < α_SVT / 8. The bench prints the
// analytic table over (k, β) and then validates empirically: on the
// "k−1 queries at T−α, one at T+α" instance it measures the failure rate
// of both mechanisms at the α where EM is predicted to be (α, β)-correct.

#include <cmath>
#include <iostream>

#include "common/flags.h"
#include "common/rng.h"
#include "core/exponential_mechanism.h"
#include "core/svt.h"
#include "eval/reporting.h"

namespace {

double AlphaSvt(double k, double beta, double epsilon) {
  return 8.0 * (std::log(k) + std::log(2.0 / beta)) / epsilon;
}

double AlphaEm(double k, double beta, double epsilon) {
  return (std::log(k - 1.0) + std::log((1.0 - beta) / beta)) / epsilon;
}

}  // namespace

int main(int argc, char** argv) {
  double epsilon = 0.1;
  int64_t trials = 2000;
  int64_t seed = 42;
  svt::FlagSet flags;
  flags.AddDouble("epsilon", &epsilon, "privacy budget");
  flags.AddInt64("trials", &trials, "empirical trials per cell");
  flags.AddInt64("seed", &seed, "rng seed");
  SVT_CHECK_OK(flags.Parse(argc, argv));

  std::cout << "Section 5: analytic (alpha, beta)-accuracy of SVT vs EM "
               "(c = Delta = 1, eps = "
            << epsilon << ")\n\n";

  svt::TablePrinter table(
      {"k", "beta", "alpha_SVT", "alpha_EM", "ratio SVT/EM"});
  for (double k : {100.0, 1000.0, 10000.0, 100000.0}) {
    for (double beta : {0.1, 0.05, 0.01}) {
      const double a_svt = AlphaSvt(k, beta, epsilon);
      const double a_em = AlphaEm(k, beta, epsilon);
      table.AddRow({svt::FormatDouble(k, 0), svt::FormatDouble(beta, 2),
                    svt::FormatDouble(a_svt, 1), svt::FormatDouble(a_em, 1),
                    svt::FormatDouble(a_svt / a_em, 2)});
    }
  }
  table.Print(std::cout);
  std::cout << "\n(paper: alpha_EM is less than 1/8 of alpha_SVT)\n\n";

  // Empirical validation: k−1 queries at T−α, one at T+α; success =
  // selecting the single above-threshold query.
  std::cout << "Empirical check at alpha = alpha_EM(k, beta): failure rate "
               "of EM should be <= beta; SVT (same alpha, far below "
               "alpha_SVT) fails more often.\n\n";
  svt::TablePrinter emp({"k", "beta", "alpha", "EM fail rate",
                         "SVT fail rate"});
  svt::Rng rng(static_cast<uint64_t>(seed));
  for (double k : {100.0, 1000.0}) {
    for (double beta : {0.1, 0.05}) {
      const double alpha = AlphaEm(k, beta, epsilon);
      const double threshold = 0.0;
      std::vector<double> scores(static_cast<size_t>(k), -alpha);
      scores.back() = alpha;

      int em_fail = 0;
      int svt_fail = 0;
      for (int64_t t = 0; t < trials; ++t) {
        // EM: one selection; monotone scoring as in §5's analysis (the
        // paper's probability expression uses exp(εq/2), the general form).
        svt::EmOptions em;
        em.epsilon = epsilon;
        em.num_selections = 1;
        em.monotonic = false;
        const auto pick =
            svt::ExponentialMechanism::SelectTopC(scores, em, rng).value();
        if (pick[0] != scores.size() - 1) ++em_fail;

        // SVT: c = 1; success iff the single positive is the last query
        // (all others ⊥, last ⊤).
        svt::SvtOptions so;
        so.epsilon = epsilon;
        so.cutoff = 1;
        auto mech = svt::SparseVector::Create(so, &rng).value();
        bool ok = true;
        for (size_t i = 0; i < scores.size() && !mech->exhausted(); ++i) {
          const bool positive =
              mech->Process(scores[i], threshold).is_positive();
          if (positive != (i == scores.size() - 1)) {
            ok = false;
            break;
          }
        }
        if (!ok || mech->positives_emitted() == 0) ++svt_fail;
      }
      emp.AddRow({svt::FormatDouble(k, 0), svt::FormatDouble(beta, 2),
                  svt::FormatDouble(alpha, 1),
                  svt::FormatDouble(em_fail / static_cast<double>(trials), 3),
                  svt::FormatDouble(svt_fail / static_cast<double>(trials),
                                    3)});
    }
  }
  emp.Print(std::cout);
  return 0;
}
