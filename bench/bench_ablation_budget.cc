// Ablation for §4.2: how the ε₁:ε₂ budget allocation affects accuracy.
//
// Two views:
//   (1) the analytic objective — the variance of the comparison noise
//       Lap(Δ/ε₁) − Lap(cΔ/ε₂) across a grid of ratios, showing the
//       minimum at 1:c^{2/3} (Eq. 12, monotone form);
//   (2) end-to-end SER on a Zipf workload across the same grid.

#include <cmath>
#include <iostream>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "core/budget.h"
#include "core/svt.h"
#include "core/top_select.h"
#include "data/dataset_spec.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "eval/reporting.h"

int main(int argc, char** argv) {
  double epsilon = 0.5;
  int64_t c64 = 50;
  int64_t runs = 60;
  int64_t seed = 42;
  svt::FlagSet flags;
  flags.AddDouble("epsilon", &epsilon, "privacy budget");
  flags.AddInt64("c", &c64, "number of selections");
  flags.AddInt64("runs", &runs, "repetitions per ratio");
  flags.AddInt64("seed", &seed, "rng seed");
  SVT_CHECK_OK(flags.Parse(argc, argv));
  const int c = static_cast<int>(c64);

  const double optimal_ratio = std::pow(static_cast<double>(c), 2.0 / 3.0);
  std::cout << "Ablation (Section 4.2): budget allocation eps1:eps2 at c = "
            << c << ", eps = " << epsilon << " (monotone queries)\n"
            << "Optimal ratio (Eq. 12): 1:" << svt::FormatDouble(
                   optimal_ratio, 1)
            << "\n\n";

  // Ratio grid around the optimum, plus the paper's named points.
  std::vector<std::pair<std::string, double>> ratios = {
      {"1:1", 1.0},
      {"1:3", 3.0},
      {"1:c^1/3", std::pow(static_cast<double>(c), 1.0 / 3.0)},
      {"1:c^2/3", optimal_ratio},
      {"1:c", static_cast<double>(c)},
      {"1:c^4/3", std::pow(static_cast<double>(c), 4.0 / 3.0)},
  };

  svt::Rng gen_rng(static_cast<uint64_t>(seed));
  svt::DatasetSpec spec = svt::ZipfSpec();
  const svt::ScoreVector scores = svt::GenerateScores(spec, gen_rng);
  const double threshold =
      svt::PaperThreshold(scores.scores(), static_cast<size_t>(c));

  svt::TablePrinter table(
      {"allocation", "comparison-noise stddev", "SER (mean±std)"});
  svt::Rng rng(static_cast<uint64_t>(seed) + 1);
  for (const auto& [label, ratio] : ratios) {
    const svt::BudgetAllocation alloc = svt::BudgetAllocation::Ratio(1.0, ratio);
    const svt::BudgetSplit split = alloc.Split(epsilon);
    const double stddev = std::sqrt(
        svt::ComparisonNoiseVariance(split, 1.0, c, /*monotonic=*/true));

    svt::RunningStats ser;
    for (int64_t r = 0; r < runs; ++r) {
      svt::Rng run_rng = rng.Fork();
      const svt::ScoreVector shuffled = scores.Shuffled(run_rng);
      svt::SvtOptions o;
      o.epsilon = epsilon;
      o.cutoff = c;
      o.monotonic = true;
      o.allocation = alloc;
      const auto selected =
          svt::SelectTopCWithSvt(shuffled.scores(), threshold, o, run_rng)
              .value();
      ser.Add(svt::ScoreErrorRate(selected, shuffled.scores(),
                                  static_cast<size_t>(c)));
    }
    table.AddRow({label, svt::FormatDouble(stddev, 1), ser.ToString(3)});
  }
  table.Print(std::cout);
  std::cout << "\n(expected: noise stddev minimized exactly at 1:c^2/3; "
               "SER minimized at or near it — Eq. 12)\n";
  return 0;
}
