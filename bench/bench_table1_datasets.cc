// Reproduces Table 1: dataset characteristics.
//
// Prints the paper's record/item counts next to the generated synthetic
// stand-ins (see DESIGN.md §3 for the substitution), plus the realized
// score mass and head statistics so EXPERIMENTS.md can record them.

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/rng.h"
#include "data/dataset_spec.h"
#include "data/generators.h"
#include "eval/reporting.h"

int main(int argc, char** argv) {
  int64_t seed = 42;
  double scale = 1.0;
  svt::FlagSet flags;
  flags.AddInt64("seed", &seed, "generator seed");
  flags.AddDouble("scale", &scale,
                  "item/record scale fraction in (0,1]; 1 = full Table 1");
  SVT_CHECK_OK(flags.Parse(argc, argv));

  std::cout << "Table 1: Dataset characteristics (paper spec vs. generated "
               "synthetic)\n\n";
  svt::TablePrinter table({"Dataset", "Records", "Items", "GeneratedItems",
                           "TotalScoreMass", "TopScore", "Score@300"});
  for (const svt::DatasetSpec& base : svt::AllDatasetSpecs()) {
    const svt::DatasetSpec spec = svt::ScaledSpec(base, scale);
    svt::Rng rng(static_cast<uint64_t>(seed));
    const svt::ScoreVector scores = svt::GenerateScores(spec, rng);
    const auto sorted = scores.SortedDescending();
    const double at300 =
        sorted.size() >= 300 ? sorted[299] : sorted.back();
    table.AddRow({base.name, std::to_string(base.num_records),
                  std::to_string(base.num_items),
                  std::to_string(spec.num_items),
                  svt::FormatDouble(scores.Total(), 0),
                  svt::FormatDouble(sorted[0], 0),
                  svt::FormatDouble(at300, 0)});
  }
  table.Print(std::cout);
  std::cout << "\n(paper: BMS-POS 515,597 x 1,657; Kosarak 990,002 x 41,270; "
               "AOL 647,377 x 2,290,685; Zipf 1,000,000 x 10,000)\n";
  return 0;
}
