// Ablation for §4.1's ε₃ (numeric-output) budget: Alg. 7 can answer each
// positive with a fresh Laplace value funded by ε₃. The paper notes "the
// ratio of (ε₁+ε₂):ε₃ is determined by the domain needs"; this bench
// quantifies the trade: as ε₃'s share grows, the numeric answers sharpen
// while the selection itself (funded by what remains) degrades.
//
// Prints, per ε₃ fraction: selection SER/FNR and the RMSE of the numeric
// answers on correctly selected items.

#include <cmath>
#include <iostream>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/svt.h"
#include "core/top_select.h"
#include "data/dataset_spec.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "eval/reporting.h"

int main(int argc, char** argv) {
  double epsilon = 1.0;
  int64_t c64 = 25;
  int64_t runs = 40;
  int64_t seed = 42;
  svt::FlagSet flags;
  flags.AddDouble("epsilon", &epsilon, "total privacy budget (eps1+eps2+eps3)");
  flags.AddInt64("c", &c64, "number of selections");
  flags.AddInt64("runs", &runs, "repetitions per fraction");
  flags.AddInt64("seed", &seed, "rng seed");
  SVT_CHECK_OK(flags.Parse(argc, argv));
  const int c = static_cast<int>(c64);

  svt::Rng gen_rng(static_cast<uint64_t>(seed));
  svt::DatasetSpec spec = svt::ZipfSpec();
  spec.num_items = 5000;
  const svt::ScoreVector scores = svt::GenerateScores(spec, gen_rng);
  const double threshold =
      svt::PaperThreshold(scores.scores(), static_cast<size_t>(c));

  std::cout << "Ablation (Section 4.1): eps3 share for numeric answers, "
            << "c = " << c << ", eps = " << epsilon << "\n\n";
  svt::TablePrinter table({"eps3 fraction", "SER", "FNR",
                           "numeric RMSE (selected)"});

  svt::Rng rng(static_cast<uint64_t>(seed) + 1);
  for (double fraction : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9}) {
    svt::RunningStats ser, fnr, rmse;
    for (int64_t r = 0; r < runs; ++r) {
      svt::Rng run_rng = rng.Fork();
      const svt::ScoreVector shuffled = scores.Shuffled(run_rng);

      svt::SvtOptions o;
      o.epsilon = epsilon;
      o.cutoff = c;
      o.monotonic = true;
      o.allocation = svt::BudgetAllocation::Optimal(c, true);
      o.numeric_output_fraction = fraction;
      auto mech = svt::SparseVector::Create(o, &run_rng).value();

      std::vector<size_t> selected;
      double sq_err = 0.0;
      int numeric_count = 0;
      for (size_t i = 0; i < shuffled.size(); ++i) {
        if (mech->exhausted()) break;
        const svt::Response resp = mech->Process(shuffled[i], threshold);
        if (!resp.is_positive()) continue;
        selected.push_back(i);
        if (resp.outcome == svt::Outcome::kAboveValue) {
          const double err = resp.value - shuffled[i];
          sq_err += err * err;
          ++numeric_count;
        }
      }
      ser.Add(svt::ScoreErrorRate(selected, shuffled.scores(),
                                  static_cast<size_t>(c)));
      fnr.Add(svt::FalseNegativeRate(selected, shuffled.scores(),
                                     static_cast<size_t>(c)));
      if (numeric_count > 0) {
        rmse.Add(std::sqrt(sq_err / numeric_count));
      }
    }
    table.AddRow({svt::FormatDouble(fraction, 2), ser.ToString(3),
                  fnr.ToString(3),
                  fraction == 0.0 ? "n/a (indicator only)"
                                  : rmse.ToString(1)});
  }
  table.Print(std::cout);
  std::cout << "\n(expected: SER/FNR grow with the eps3 share — selection "
               "keeps less budget — while numeric RMSE shrinks)\n";
  return 0;
}
