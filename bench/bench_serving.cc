// Serving-layer throughput: aggregate queries/sec of ShardedSvtServer +
// RequestBatcher against the single-stream streaming baseline (the same
// ⊥-dominated workload as bench_micro's BM_SvtProcess: negatives are free,
// so the hot path is the all-below chunk bound).
//
// Acceptance (ISSUE 2): aggregate serving throughput >= the single-stream
// streaming baseline on the same machine. On a single-vCPU container the
// shards cannot add wall-clock parallelism, but every shard executes
// through the vectorized batch engine, so even one shard clears the bar;
// on multi-core hardware the per-shard numbers additionally scale.
//
// ISSUE 6 additions:
//   * overload scenario — offered load 2x the admission cap under
//     ShedPolicy::kReject: reports shed rate, queue high-water mark and
//     ACCEPTED goodput (admission control must not tax the requests that
//     get through);
//   * fault-injection A/B — the same drain loop with no injector vs an
//     inactive (all-zero-probability) injector, interleaved to defeat
//     this container's frequency drift: the zero-cost-when-disabled
//     claim, measured.
// The *_items_per_second lines are scripts/record_bench.sh-compatible
// (BENCH=build/bench_serving scripts/record_bench.sh 'serving_').

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/svt.h"
#include "serving/fault_injection.h"
#include "serving/request_batcher.h"
#include "serving/sharded_server.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

svt::SvtOptions WorkloadOptions() {
  svt::SvtOptions o;
  o.epsilon = 0.1;
  o.cutoff = 1 << 20;  // effectively no abort during the run
  o.monotonic = true;
  return o;
}

void PrintRow(const std::string& name, int64_t queries, double seconds,
              double baseline_qps) {
  const double qps = static_cast<double>(queries) / seconds;
  std::cout << name << ": " << queries << " queries in " << seconds
            << " s = " << qps / 1e6 << " Mq/s";
  if (baseline_qps > 0.0) {
    std::cout << "  (" << qps / baseline_qps << "x streaming baseline)";
  }
  std::cout << "\n";
}

/// record_bench.sh-compatible line: first token is the benchmark name.
void PrintBenchLine(const std::string& name, double items_per_second) {
  std::cout << name << " items_per_second=" << items_per_second / 1e6
            << "M/s\n";
}

/// One timed drain loop for the fault-injection A/B: `injector` is either
/// null or inactive, so both runs execute the identical accepted work.
/// Returns accepted queries per second.
double TimedDrainLoop(svt::FaultInjector* injector,
                      std::span<const double> answers) {
  svt::ServingOptions options;
  options.num_shards = 1;
  options.seed = 5;
  options.mode = svt::ShardMode::kAutoReset;
  options.svt = WorkloadOptions();
  options.fault_injector = injector;
  auto server = svt::ShardedSvtServer::Create(options).value();
  svt::RequestBatcher batcher(server.get());

  const int kRounds = 48;
  const int kRequestsPerRound = 8;
  std::vector<std::vector<svt::Response>> outs(
      static_cast<size_t>(kRequestsPerRound));
  const auto start = Clock::now();
  for (int round = 0; round < kRounds; ++round) {
    for (int r = 0; r < kRequestsPerRound; ++r) {
      batcher.Submit(0, answers, 0.0, &outs[static_cast<size_t>(r)]);
    }
    batcher.Drain();
  }
  const double seconds = SecondsSince(start);
  return static_cast<double>(server->TotalStats().queries) / seconds;
}

}  // namespace

int main() {
  const int64_t kQueriesPerBatch = 1 << 14;
  const int kBatchesPerShard = 64;
  const std::vector<double> answers(static_cast<size_t>(kQueriesPerBatch),
                                    -1e12);  // ⊥-dominated hot path

  // --- Single-stream streaming baseline (BM_SvtProcess's loop). ---
  int64_t positives = 0;
  double baseline_qps = 0.0;
  {
    svt::Rng rng(5);
    auto mech = svt::SparseVector::Create(WorkloadOptions(), &rng).value();
    const int64_t total = kQueriesPerBatch * kBatchesPerShard;
    const auto start = Clock::now();
    for (int64_t i = 0; i < total; ++i) {
      if (mech->exhausted()) mech->Reset();
      positives += mech->Process(answers[0], 0.0).is_positive() ? 1 : 0;
    }
    const double seconds = SecondsSince(start);
    baseline_qps = static_cast<double>(total) / seconds;
    PrintRow("streaming 1-stream  ", total, seconds, 0.0);
  }

  // --- Sharded serving through the batcher, shard counts 1..hardware. ---
  std::vector<int> shard_counts = {1, 2, 4};
  const int hw = svt::ThreadPool::HardwareThreads();
  if (hw > 4) shard_counts.push_back(hw);
  for (const int shards : shard_counts) {
    svt::ServingOptions options;
    options.num_shards = shards;
    options.seed = 5;
    options.mode = svt::ShardMode::kAutoReset;
    options.svt = WorkloadOptions();
    auto server = svt::ShardedSvtServer::Create(options).value();
    svt::RequestBatcher batcher(server.get());

    // One key per shard (found by scanning the routing hash) so every
    // shard sees equal load.
    std::vector<uint64_t> shard_keys(static_cast<size_t>(shards));
    {
      std::vector<bool> found(static_cast<size_t>(shards), false);
      int remaining = shards;
      for (uint64_t key = 0; remaining > 0; ++key) {
        const auto s = static_cast<size_t>(server->ShardOf(key));
        if (!found[s]) {
          found[s] = true;
          shard_keys[s] = key;
          --remaining;
        }
      }
    }

    // One reused response buffer per shard slot — the serving buffer-reuse
    // contract; capacity converges after the first drain.
    std::vector<std::vector<svt::Response>> outs(
        static_cast<size_t>(shards));
    const auto start = Clock::now();
    for (int batch = 0; batch < kBatchesPerShard; ++batch) {
      for (int s = 0; s < shards; ++s) {
        batcher.Submit(shard_keys[static_cast<size_t>(s)], answers, 0.0,
                       &outs[static_cast<size_t>(s)]);
      }
      batcher.Drain();
    }
    const double seconds = SecondsSince(start);
    for (const auto& out : outs) {
      for (const svt::Response& r : out) positives += r.is_positive();
    }
    const int64_t total =
        kQueriesPerBatch * kBatchesPerShard * static_cast<int64_t>(shards);
    PrintRow("serving " + std::to_string(shards) + " shard(s)",
             server->TotalStats().queries, seconds, baseline_qps);
    if (server->TotalStats().queries != total) {
      std::cout << "WARNING: expected " << total << " queries\n";
      return 1;
    }
  }

  // --- Overload scenario: offered load 2x the admission cap, kReject. ---
  // Each round offers 2 * max_pending requests, then drains once: half
  // are shed by design, and the number the batcher reports must match.
  // The figure of merit is the ACCEPTED goodput — admission control may
  // not tax the requests that get through.
  {
    const int64_t kOverloadQueries = 1 << 12;
    const std::vector<double> overload_answers(
        static_cast<size_t>(kOverloadQueries), -1e12);
    svt::ServingOptions options;
    options.num_shards = 1;
    options.seed = 5;
    options.mode = svt::ShardMode::kAutoReset;
    options.svt = WorkloadOptions();
    auto server = svt::ShardedSvtServer::Create(options).value();
    svt::RequestBatcher::Options bo;
    bo.max_pending = 64;
    bo.shed_policy = svt::ShedPolicy::kReject;
    svt::RequestBatcher batcher(server.get(), bo);

    const int kRounds = 32;
    const int kOfferedPerRound = 2 * static_cast<int>(bo.max_pending);
    std::vector<std::vector<svt::Response>> outs(
        static_cast<size_t>(kOfferedPerRound));
    int64_t offered = 0;
    const auto start = Clock::now();
    for (int round = 0; round < kRounds; ++round) {
      for (int r = 0; r < kOfferedPerRound; ++r) {
        batcher.Submit(0, overload_answers, 0.0,
                       &outs[static_cast<size_t>(r)]);
        ++offered;
      }
      batcher.Drain();
    }
    const double seconds = SecondsSince(start);

    const svt::RequestBatcher::BatcherStats stats = batcher.stats();
    const int64_t accepted_queries = server->TotalStats().queries;
    const double shed_rate =
        static_cast<double>(stats.shed_overload) / static_cast<double>(offered);
    std::cout << "serving overload (cap " << bo.max_pending << ", offered 2x)"
              << ": " << offered << " offered, " << stats.submitted
              << " accepted, " << stats.shed_overload << " shed ("
              << shed_rate * 100.0 << "%), queue high-water "
              << stats.queue_high_water << ", sheds seen by server "
              << server->TotalStats().shed << "\n";
    if (stats.submitted + stats.shed_overload != offered ||
        stats.queue_high_water != bo.max_pending) {
      std::cout << "WARNING: admission accounting does not add up\n";
      return 1;
    }
    PrintBenchLine("serving_overload_accepted_goodput",
                   static_cast<double>(accepted_queries) / seconds);
    PrintBenchLine("serving_overload_admission_rate",
                   static_cast<double>(offered) / seconds);
  }

  // --- Fault injection: compiled in but inactive vs absent. ---
  // Interleaved A/B (off, on, off, on, ...) so this container's frequency
  // drift hits both arms equally; report the best of each arm. "on" is an
  // injector with every probability zero: each serving site pays exactly
  // one never-taken branch.
  {
    const std::vector<double> ab_answers(
        static_cast<size_t>(kQueriesPerBatch), -1e12);
    svt::FaultInjector inactive{svt::FaultInjector::Options{}};
    double best_off = 0.0;
    double best_on = 0.0;
    const int kPairs = 3;
    for (int pair = 0; pair < kPairs; ++pair) {
      best_off = std::max(best_off, TimedDrainLoop(nullptr, ab_answers));
      best_on = std::max(best_on, TimedDrainLoop(&inactive, ab_answers));
    }
    PrintBenchLine("serving_injector_absent", best_off);
    PrintBenchLine("serving_injector_inactive", best_on);
    std::cout << "serving fault-injection overhead when disabled: "
              << (best_off / best_on - 1.0) * 100.0
              << "% (inactive vs absent, best of " << kPairs
              << " interleaved pairs)\n";
  }

  std::cout << "(sink: " << positives << " positives)\n";
  return 0;
}
