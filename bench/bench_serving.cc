// Serving-layer throughput: aggregate queries/sec of ShardedSvtServer +
// RequestBatcher against the single-stream streaming baseline (the same
// ⊥-dominated workload as bench_micro's BM_SvtProcess: negatives are free,
// so the hot path is the all-below chunk bound).
//
// Acceptance (ISSUE 2): aggregate serving throughput >= the single-stream
// streaming baseline on the same machine. On a single-vCPU container the
// shards cannot add wall-clock parallelism, but every shard executes
// through the vectorized batch engine, so even one shard clears the bar;
// on multi-core hardware the per-shard numbers additionally scale.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/svt.h"
#include "serving/request_batcher.h"
#include "serving/sharded_server.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

svt::SvtOptions WorkloadOptions() {
  svt::SvtOptions o;
  o.epsilon = 0.1;
  o.cutoff = 1 << 20;  // effectively no abort during the run
  o.monotonic = true;
  return o;
}

void PrintRow(const std::string& name, int64_t queries, double seconds,
              double baseline_qps) {
  const double qps = static_cast<double>(queries) / seconds;
  std::cout << name << ": " << queries << " queries in " << seconds
            << " s = " << qps / 1e6 << " Mq/s";
  if (baseline_qps > 0.0) {
    std::cout << "  (" << qps / baseline_qps << "x streaming baseline)";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  const int64_t kQueriesPerBatch = 1 << 14;
  const int kBatchesPerShard = 64;
  const std::vector<double> answers(static_cast<size_t>(kQueriesPerBatch),
                                    -1e12);  // ⊥-dominated hot path

  // --- Single-stream streaming baseline (BM_SvtProcess's loop). ---
  int64_t positives = 0;
  double baseline_qps = 0.0;
  {
    svt::Rng rng(5);
    auto mech = svt::SparseVector::Create(WorkloadOptions(), &rng).value();
    const int64_t total = kQueriesPerBatch * kBatchesPerShard;
    const auto start = Clock::now();
    for (int64_t i = 0; i < total; ++i) {
      if (mech->exhausted()) mech->Reset();
      positives += mech->Process(answers[0], 0.0).is_positive() ? 1 : 0;
    }
    const double seconds = SecondsSince(start);
    baseline_qps = static_cast<double>(total) / seconds;
    PrintRow("streaming 1-stream  ", total, seconds, 0.0);
  }

  // --- Sharded serving through the batcher, shard counts 1..hardware. ---
  std::vector<int> shard_counts = {1, 2, 4};
  const int hw = svt::ThreadPool::HardwareThreads();
  if (hw > 4) shard_counts.push_back(hw);
  for (const int shards : shard_counts) {
    svt::ServingOptions options;
    options.num_shards = shards;
    options.seed = 5;
    options.mode = svt::ShardMode::kAutoReset;
    options.svt = WorkloadOptions();
    auto server = svt::ShardedSvtServer::Create(options).value();
    svt::RequestBatcher batcher(server.get());

    // One key per shard (found by scanning the routing hash) so every
    // shard sees equal load.
    std::vector<uint64_t> shard_keys(static_cast<size_t>(shards));
    {
      std::vector<bool> found(static_cast<size_t>(shards), false);
      int remaining = shards;
      for (uint64_t key = 0; remaining > 0; ++key) {
        const auto s = static_cast<size_t>(server->ShardOf(key));
        if (!found[s]) {
          found[s] = true;
          shard_keys[s] = key;
          --remaining;
        }
      }
    }

    // One reused response buffer per shard slot — the serving buffer-reuse
    // contract; capacity converges after the first drain.
    std::vector<std::vector<svt::Response>> outs(
        static_cast<size_t>(shards));
    const auto start = Clock::now();
    for (int batch = 0; batch < kBatchesPerShard; ++batch) {
      for (int s = 0; s < shards; ++s) {
        batcher.Submit(shard_keys[static_cast<size_t>(s)], answers, 0.0,
                       &outs[static_cast<size_t>(s)]);
      }
      batcher.Drain();
    }
    const double seconds = SecondsSince(start);
    for (const auto& out : outs) {
      for (const svt::Response& r : out) positives += r.is_positive();
    }
    const int64_t total =
        kQueriesPerBatch * kBatchesPerShard * static_cast<int64_t>(shards);
    PrintRow("serving " + std::to_string(shards) + " shard(s)",
             server->TotalStats().queries, seconds, baseline_qps);
    if (server->TotalStats().queries != total) {
      std::cout << "WARNING: expected " << total << " queries\n";
      return 1;
    }
  }

  std::cout << "(sink: " << positives << " positives)\n";
  return 0;
}
