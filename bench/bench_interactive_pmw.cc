// The §1 interactive motivation, measured: Private Multiplicative Weights
// driven by streaming SVT answers a long stream of linear queries while
// spending budget on only a handful of them.
//
// Prints, as the stream progresses: queries answered, free answers,
// updates used, budget spent, and the average error on held-out queries —
// showing the error dropping as SVT triggers updates.

#include <cmath>
#include <iostream>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "eval/reporting.h"
#include "interactive/pmw.h"

int main(int argc, char** argv) {
  double epsilon = 4.0;
  int64_t domain = 64;
  int64_t records = 100000;
  int64_t stream_length = 2000;
  int64_t max_updates = 40;
  double learning_rate = 0.4;
  int64_t seed = 42;
  svt::FlagSet flags;
  flags.AddDouble("epsilon", &epsilon, "total privacy budget");
  flags.AddInt64("domain", &domain, "histogram domain size");
  flags.AddInt64("records", &records, "number of records");
  flags.AddInt64("stream", &stream_length, "number of queries in the stream");
  flags.AddInt64("max_updates", &max_updates, "SVT cutoff c");
  flags.AddDouble("eta", &learning_rate, "multiplicative-weights step");
  flags.AddInt64("seed", &seed, "rng seed");
  SVT_CHECK_OK(flags.Parse(argc, argv));

  svt::Rng rng(static_cast<uint64_t>(seed));
  // Skewed ground truth the uniform prior knows nothing about.
  std::vector<double> weights(domain);
  for (int64_t i = 0; i < domain; ++i) weights[i] = 1.0 / (1.0 + i * i);
  const svt::Histogram data = svt::Histogram::Random(
      static_cast<size_t>(domain), static_cast<size_t>(records), rng,
      weights);

  svt::PmwOptions options;
  options.epsilon = epsilon;
  options.error_threshold = 0.02 * static_cast<double>(records);
  options.max_updates = static_cast<int>(max_updates);
  options.learning_rate = learning_rate;
  auto pmw =
      svt::PrivateMultiplicativeWeights::Create(options, data, &rng).value();

  // Held-out queries for error tracking.
  svt::Rng heldout_rng(7);
  std::vector<svt::LinearQuery> heldout;
  for (int i = 0; i < 64; ++i) {
    heldout.push_back(svt::LinearQuery::RandomSubset(
        static_cast<size_t>(domain), heldout_rng));
  }
  const auto relative_error = [&](const svt::Histogram& synth) {
    double total = 0.0;
    for (const auto& q : heldout) {
      total += std::abs(q.Evaluate(data) - q.Evaluate(synth));
    }
    return total / heldout.size() / static_cast<double>(records);
  };

  std::cout << "Interactive PMW over SVT (eps = " << epsilon << ", domain "
            << domain << ", " << records << " records, threshold "
            << options.error_threshold << ")\n\n";
  svt::TablePrinter table({"queries", "free answers", "updates",
                           "eps spent", "held-out rel. error"});
  const auto add_checkpoint = [&] {
    table.AddRow({std::to_string(pmw->queries_answered()),
                  std::to_string(pmw->free_answers()),
                  std::to_string(pmw->updates_used()),
                  svt::FormatDouble(pmw->accountant().spent(), 3),
                  svt::FormatDouble(relative_error(pmw->synthetic()), 4)});
  };
  add_checkpoint();  // the uniform prior, before any queries
  svt::Rng query_rng(static_cast<uint64_t>(seed) + 1);
  // Log-spaced checkpoints: the updates concentrate early in the stream.
  int64_t next_checkpoint = 5;
  for (int64_t i = 1; i <= stream_length; ++i) {
    pmw->AnswerQuery(svt::LinearQuery::RandomSubset(
        static_cast<size_t>(domain), query_rng));
    if (i == next_checkpoint || i == stream_length) {
      add_checkpoint();
      next_checkpoint *= 3;
    }
  }
  table.Print(std::cout);
  std::cout << "\n(expected: most answers free; error drops as the first "
               "updates land; budget spend plateaus at exhaustion)\n";
  return 0;
}
