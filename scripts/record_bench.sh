#!/usr/bin/env bash
# record_bench.sh — run the micro benches REPS times and emit min/max
# items_per_second per benchmark as a JSON fragment, the noise-range
# protocol BENCH_micro.json records (ranges over >= 3 repetitions on this
# container). Replaces hand-running the bench and hand-editing ranges.
#
# Usage:
#   scripts/record_bench.sh                 # default filter, 5 reps
#   scripts/record_bench.sh 'BM_SvtRun.*'   # custom filter regex
#
# Environment:
#   BENCH     bench binary          (default build/bench_micro)
#   REPS      repetitions           (default 5)
#   MIN_TIME  --benchmark_min_time  (default 0.25)
set -euo pipefail

BENCH="${BENCH:-build/bench_micro}"
REPS="${REPS:-5}"
MIN_TIME="${MIN_TIME:-0.25}"
FILTER="${1:-BM_SvtRunBatch/|BM_SvtRunBatchNearThreshold|BM_SvtRunBatchPerQueryNearThreshold|BM_FusedLaplaceScanSumGePairwise|BM_RngFillUint64|BM_LaplaceSampleBlock}"

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not found or not executable (build with benchmarks on)" >&2
  exit 1
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

for i in $(seq "$REPS"); do
  echo "== rep $i/$REPS: $BENCH --benchmark_filter=$FILTER" >&2
  "$BENCH" --benchmark_filter="$FILTER" --benchmark_min_time="$MIN_TIME" \
    2>/dev/null |
    awk '/items_per_second=/ {
      v = ""
      for (f = 1; f <= NF; ++f) if ($f ~ /items_per_second=/) v = $f
      sub(/.*items_per_second=/, "", v)
      mult = 1
      if (v ~ /G\/s$/)      mult = 1e9
      else if (v ~ /M\/s$/) mult = 1e6
      else if (v ~ /k\/s$/) mult = 1e3
      sub(/[GMk]?\/s$/, "", v)
      printf "%s %.6e\n", $1, v * mult
    }' >>"$tmp"
done

if ! [ -s "$tmp" ]; then
  echo "error: no items_per_second lines matched filter '$FILTER'" >&2
  exit 1
fi

awk -v reps="$REPS" -v mt="$MIN_TIME" '
{
  n = $1; v = $2 + 0
  if (!(n in min) || v < min[n]) min[n] = v
  if (!(n in max) || v > max[n]) max[n] = v
  if (!(n in seen)) { order[++k] = n; seen[n] = 1 }
}
END {
  printf "{\n"
  printf "  \"noise_protocol\": \"min-max items/sec over %d reps of --benchmark_min_time=%s (scripts/record_bench.sh)\"", reps, mt
  for (i = 1; i <= k; ++i) {
    n = order[i]
    printf ",\n  \"%s_items_per_second\": [%.4e, %.4e]", n, min[n], max[n]
  }
  printf "\n}\n"
}' "$tmp"
