#!/usr/bin/env bash
# record_bench.sh — run the micro benches REPS times and emit min/max
# items_per_second per benchmark as a JSON fragment, the noise-range
# protocol BENCH_micro.json records (ranges over >= 3 repetitions on this
# container). Replaces hand-running the bench and hand-editing ranges.
#
# Usage:
#   scripts/record_bench.sh                 # default filter, 5 reps
#   scripts/record_bench.sh 'BM_SvtRun.*'   # custom filter regex
#   scripts/record_bench.sh 'BM_A' 'BM_B'   # paired A/B: interleaved reps
#
# Paired mode (two positional args): each rep runs arm A then arm B
# back-to-back, so thermal / frequency / noisy-neighbor drift lands on
# both arms equally instead of biasing whichever ran last. Both arms'
# ranges are emitted in ONE JSON block; with BENCH_B set the arms run
# different binaries (arm-B keys get a "__B" suffix so same-named
# benchmarks from the two builds stay distinct).
#
# Environment:
#   BENCH     bench binary          (default build/bench_micro)
#   BENCH_B   arm-B binary          (default $BENCH; paired mode only)
#   REPS      repetitions           (default 5)
#   MIN_TIME  --benchmark_min_time  (default 0.25)
set -euo pipefail

BENCH="${BENCH:-build/bench_micro}"
BENCH_B="${BENCH_B:-$BENCH}"
REPS="${REPS:-5}"
MIN_TIME="${MIN_TIME:-0.25}"
FILTER="${1:-BM_SvtRunBatch/|BM_SvtRunBatchNearThreshold|BM_SvtRunBatchPerQueryNearThreshold|BM_SvtRunBatchResampleNearThreshold|BM_FusedLaplaceScanSumGePairwise|BM_RngFillUint64|BM_LaplaceSampleBlock}"
FILTER_B="${2:-}"

for bin in "$BENCH" "$BENCH_B"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not found or not executable (build with benchmarks on)" >&2
    exit 1
  fi
done

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# run_arm <binary> <filter> <name-suffix>: one bench invocation, appending
# "name metric value" lines to $tmp — items/sec (unit-expanded) always,
# plus the diagnostic counters some benchmarks export: prune_rate
# (BM_SvtRunBatchNearThresholdPrefiltered: fraction of tier-2 span visits
# the quantized bound level discharged) and words_skipped_frac
# (BM_SvtRunBatchPerQueryNearThreshold*: fraction of per-query elements
# whose transform the span skip words discharged).
run_arm() {
  "$1" --benchmark_filter="$2" --benchmark_min_time="$MIN_TIME" \
    2>/dev/null |
    awk -v suffix="$3" '/items_per_second=/ {
      v = ""
      for (f = 1; f <= NF; ++f) if ($f ~ /items_per_second=/) v = $f
      sub(/.*items_per_second=/, "", v)
      mult = 1
      if (v ~ /G\/s$/)      mult = 1e9
      else if (v ~ /M\/s$/) mult = 1e6
      else if (v ~ /k\/s$/) mult = 1e3
      sub(/[GMk]?\/s$/, "", v)
      printf "%s%s items_per_second %.6e\n", $1, suffix, v * mult
      for (f = 1; f <= NF; ++f) if ($f ~ /^(prune_rate|words_skipped_frac)=/) {
        p = $f
        key = $f
        sub(/=.*/, "", key)
        sub(/^[a-z_]+=/, "", p)
        printf "%s%s %s %.6e\n", $1, suffix, key, p + 0
      }
    }' >>"$tmp"
}

suffix_b=""
if [ -n "$FILTER_B" ] && [ "$BENCH_B" != "$BENCH" ]; then
  suffix_b="__B"
fi

for i in $(seq "$REPS"); do
  echo "== rep $i/$REPS (A): $BENCH --benchmark_filter=$FILTER" >&2
  run_arm "$BENCH" "$FILTER" ""
  if [ -n "$FILTER_B" ]; then
    echo "== rep $i/$REPS (B): $BENCH_B --benchmark_filter=$FILTER_B" >&2
    run_arm "$BENCH_B" "$FILTER_B" "$suffix_b"
  fi
done

if ! [ -s "$tmp" ]; then
  echo "error: no items_per_second lines matched filter '$FILTER'" >&2
  exit 1
fi

proto="min-max items/sec over $REPS reps of --benchmark_min_time=$MIN_TIME (scripts/record_bench.sh)"
if [ -n "$FILTER_B" ]; then
  proto="min-max items/sec over $REPS interleaved A/B reps of --benchmark_min_time=$MIN_TIME (scripts/record_bench.sh paired mode)"
fi

awk -v proto="$proto" '
{
  n = $1 "_" $2; v = $3 + 0
  if (!(n in min) || v < min[n]) min[n] = v
  if (!(n in max) || v > max[n]) max[n] = v
  if (!(n in seen)) { order[++k] = n; seen[n] = 1 }
}
END {
  printf "{\n"
  printf "  \"noise_protocol\": \"%s\"", proto
  for (i = 1; i <= k; ++i) {
    n = order[i]
    printf ",\n  \"%s\": [%.4e, %.4e]", n, min[n], max[n]
  }
  printf "\n}\n"
}' "$tmp"
