// The Lee–Clifton use case ([13] in the paper): privately select the top-c
// frequent itemsets of a transaction database.
//
// Pipeline: synthesize a market-basket database → mine candidate itemsets
// with FP-growth → select the top c under ε-DP three ways:
//   * SVT-S with the optimal 1:c^{2/3} allocation (interactive-capable),
//   * SVT-ReTr with a 3D threshold boost (non-interactive),
//   * the Exponential Mechanism (non-interactive; the paper's
//     recommendation for this setting).
// Prints SER/FNR for each so the §6 conclusion is visible on a laptop.

#include <iostream>
#include <vector>

#include "common/rng.h"
#include "core/exponential_mechanism.h"
#include "core/svt.h"
#include "core/svt_retraversal.h"
#include "core/top_select.h"
#include "data/fpgrowth.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "eval/reporting.h"

int main() {
  svt::Rng rng(7);

  // A market-basket database with a power-law item popularity profile.
  std::vector<double> popularity(120);
  for (size_t i = 0; i < popularity.size(); ++i) {
    popularity[i] = 20000.0 / static_cast<double>(i + 1);
  }
  const svt::TransactionDb db =
      svt::GenerateTransactions(svt::ScoreVector(popularity), 20000, rng);
  std::cout << "database: " << db.num_transactions() << " transactions, "
            << db.num_items() << " items, " << db.TotalOccurrences()
            << " occurrences\n";

  // Candidate itemsets (size <= 2) with their true supports.
  svt::FpGrowthOptions mine;
  mine.min_support = 200;
  mine.max_itemset_size = 2;
  const auto candidates = svt::MineFrequentItemsets(db, mine);
  std::cout << "FP-growth candidates: " << candidates.size()
            << " itemsets with support >= " << mine.min_support << "\n\n";

  std::vector<double> supports;
  supports.reserve(candidates.size());
  for (const auto& s : candidates) {
    supports.push_back(static_cast<double>(s.support));
  }

  const int c = 15;
  const double epsilon = 0.5;
  const double threshold =
      svt::PaperThreshold(supports, static_cast<size_t>(c));

  // Shuffle once: SVT's result depends on traversal order.
  svt::Rng order_rng = rng.Fork();
  std::vector<uint32_t> perm;
  order_rng.ShuffleIndices(supports.size(), &perm);
  std::vector<double> shuffled(supports.size());
  for (size_t i = 0; i < perm.size(); ++i) shuffled[i] = supports[perm[i]];

  svt::TablePrinter table({"method", "SER", "FNR", "selected"});

  {  // SVT-S, optimal allocation, monotone noise.
    svt::SvtOptions o;
    o.epsilon = epsilon;
    o.cutoff = c;
    o.monotonic = true;
    o.allocation = svt::BudgetAllocation::Optimal(c, true);
    svt::Rng run = rng.Fork();
    const auto sel =
        svt::SelectTopCWithSvt(shuffled, threshold, o, run).value();
    table.AddRow({"SVT-S-1:c^2/3",
                  svt::FormatDouble(svt::ScoreErrorRate(sel, shuffled, c), 3),
                  svt::FormatDouble(svt::FalseNegativeRate(sel, shuffled, c),
                                    3),
                  std::to_string(sel.size())});
  }

  {  // SVT with retraversal, 3D boost.
    svt::RetraversalOptions o;
    o.svt.epsilon = epsilon;
    o.svt.cutoff = c;
    o.svt.monotonic = true;
    o.svt.allocation = svt::BudgetAllocation::Optimal(c, true);
    o.threshold_boost_devs = 3.0;
    svt::Rng run = rng.Fork();
    const auto result =
        svt::SelectWithRetraversal(shuffled, threshold, o, run).value();
    table.AddRow(
        {"SVT-ReTr-3D",
         svt::FormatDouble(svt::ScoreErrorRate(result.selected, shuffled, c),
                           3),
         svt::FormatDouble(
             svt::FalseNegativeRate(result.selected, shuffled, c), 3),
         std::to_string(result.selected.size()) + " (" +
             std::to_string(result.passes_used) + " passes)"});
  }

  {  // Exponential Mechanism.
    svt::EmOptions o;
    o.epsilon = epsilon;
    o.num_selections = c;
    o.monotonic = true;
    svt::Rng run = rng.Fork();
    const auto sel =
        svt::ExponentialMechanism::SelectTopC(shuffled, o, run).value();
    table.AddRow({"EM",
                  svt::FormatDouble(svt::ScoreErrorRate(sel, shuffled, c), 3),
                  svt::FormatDouble(svt::FalseNegativeRate(sel, shuffled, c),
                                    3),
                  std::to_string(sel.size())});
  }

  table.Print(std::cout);
  std::cout << "\ntrue top-" << c << " itemsets:\n";
  for (int i = 0; i < c; ++i) {
    std::cout << "  " << svt::ToString(candidates[i]) << "\n";
  }
  std::cout << "\n(§6's conclusion: in this non-interactive setting EM "
               "should match or beat both SVT variants)\n";
  return 0;
}
