// Interactive setting (§1): an online monitoring service answers a stream
// of queries it has never seen before, using PMW-over-SVT (the iterative
// construction) so that the vast majority of answers are free.
//
// Scenario: a service holds a private histogram of user activity over 48
// regions. Analysts submit arbitrary subset-count queries; the service
// answers from a synthetic histogram whenever SVT certifies the estimate
// is accurate, and spends budget only when the estimate is badly off.

#include <cmath>
#include <iostream>
#include <vector>

#include "common/rng.h"
#include "interactive/pmw.h"

int main() {
  svt::Rng rng(11);

  // Private data: activity concentrated in a few regions.
  const size_t regions = 48;
  std::vector<double> weights(regions);
  for (size_t i = 0; i < regions; ++i) {
    weights[i] = std::exp(-static_cast<double>(i) / 6.0);
  }
  const svt::Histogram data =
      svt::Histogram::Random(regions, 200000, rng, weights);

  svt::PmwOptions options;
  options.epsilon = 1.0;
  options.svt_fraction = 0.5;
  options.error_threshold = 4000.0;  // 2% of the population
  options.max_updates = 12;
  options.learning_rate = 0.25;
  auto pmw =
      svt::PrivateMultiplicativeWeights::Create(options, data, &rng).value();

  std::cout << "Serving an online query stream under total epsilon = "
            << options.epsilon << " (max " << options.max_updates
            << " paid answers)\n\n";

  svt::Rng analyst(99);
  int64_t shown = 0;
  for (int i = 0; i < 600; ++i) {
    const svt::LinearQuery query =
        svt::LinearQuery::RandomSubset(regions, analyst);
    const double truth = query.Evaluate(data);
    const svt::PmwAnswer answer = pmw->AnswerQuery(query);

    // Print the interesting events plus a periodic sample of free ones.
    if (answer.triggered_update || i % 100 == 0) {
      ++shown;
      std::cout << "query " << i << ": answer=" << answer.value
                << " truth=" << truth << " relerr="
                << std::abs(answer.value - truth) / data.total()
                << (answer.triggered_update
                        ? "  [PAID: SVT flagged the estimate, "
                          "Laplace answer + MW update]"
                        : "  [free: synthetic estimate]")
                << "\n";
    }
  }

  std::cout << "\nstream summary: " << pmw->queries_answered()
            << " queries answered, " << pmw->free_answers() << " free, "
            << pmw->updates_used() << " paid updates, epsilon spent = "
            << pmw->accountant().spent() << " / " << options.epsilon
            << "\n";
  std::cout << "\nThis is the power of SVT in the interactive setting: "
               "negative outcomes (accurate estimates) consume no budget, "
               "so the stream can continue indefinitely.\n";
  return 0;
}
