// Sharded SVT serving (the paper's §1 interactive setting, at scale): a
// monitoring backend answers threshold queries for many tenants. Each
// tenant's key routes to one of N shards; each shard is a budget-metered
// AboveThresholdSession on its own forked noise stream, so negatives stay
// free, every shard enforces its lifetime epsilon, and a fixed
// (seed, shard count, submission order) reproduces every answer bitwise —
// run this twice and the transcripts match.

#include <cstdint>
#include <iostream>
#include <vector>

#include "common/rng.h"
#include "serving/request_batcher.h"
#include "serving/sharded_server.h"

namespace {

std::vector<svt::Response> ServeOnce() {
  svt::ServingOptions options;
  options.num_shards = 4;
  options.seed = 2024;
  options.mode = svt::ShardMode::kBudgetMetered;
  options.session.total_epsilon = 1.0;
  options.session.epsilon_per_round = 0.1;  // 10 rounds fit exactly
  options.session.round.cutoff = 2;
  options.session.round.monotonic = true;
  auto server = svt::ShardedSvtServer::Create(options).value();
  svt::RequestBatcher batcher(server.get());

  // 24 tenants, each submitting a batch of "is this counter anomalous?"
  // queries. Most answers sit far below the threshold: those are free.
  const int kTenants = 24;
  const int kQueriesPerBatch = 200;
  svt::Rng traffic(7);
  std::vector<std::vector<double>> batches(kTenants);
  std::vector<std::vector<svt::Response>> outs(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    batches[t].reserve(kQueriesPerBatch);
    for (int q = 0; q < kQueriesPerBatch; ++q) {
      // Occasional genuine anomaly well above the threshold of 50.
      batches[t].push_back(traffic.NextBernoulli(0.02)
                               ? traffic.NextUniform(80.0, 120.0)
                               : traffic.NextUniform(0.0, 30.0));
    }
    batcher.Submit(static_cast<uint64_t>(t), batches[t], 50.0, &outs[t]);
  }
  batcher.Drain();

  std::vector<svt::Response> transcript;
  for (int t = 0; t < kTenants; ++t) {
    transcript.insert(transcript.end(), outs[t].begin(), outs[t].end());
  }

  const svt::ServingStats total = server->TotalStats();
  std::cout << "served " << total.queries << " queries in " << total.batches
            << " batches across " << options.num_shards << " shards; "
            << total.positives << " positives (budget-consuming)\n";
  for (int s = 0; s < server->num_shards(); ++s) {
    const svt::ServingStats stats = server->StatsForShard(s);
    std::cout << "  shard " << s << ": " << stats.queries << " queries, "
              << stats.positives << " positives"
              << (server->ShardExhausted(s) ? "  [budget exhausted]" : "")
              << "\n";
  }
  return transcript;
}

}  // namespace

int main() {
  std::cout << "--- run 1 ---\n";
  const std::vector<svt::Response> first = ServeOnce();
  std::cout << "--- run 2 (same seed, same submission order) ---\n";
  const std::vector<svt::Response> second = ServeOnce();
  std::cout << (first == second
                    ? "\ntranscripts are bitwise identical: serving is "
                      "deterministic given (seed, shards, order)\n"
                    : "\nERROR: transcripts differ\n");
  return first == second ? 0 : 1;
}
