// The Stoddard et al. use case ([18] in the paper): private feature
// selection — pick the features whose relevance score clears a threshold.
//
// This example contrasts what [18] did (Alg. 5: no query noise, no cutoff;
// NOT differentially private, Theorem 3) with the correct procedure
// (Alg. 7 / SVT-S), and shows why the broken variant looks attractive:
// its selections are much more accurate — precisely because it is leaking.

#include <cmath>
#include <iostream>
#include <vector>

#include "common/rng.h"
#include "core/svt.h"
#include "core/svt_variants.h"
#include "core/top_select.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "eval/reporting.h"

int main() {
  svt::Rng rng(5);

  // Relevance scores (e.g. per-feature chi^2 counts) for 400 candidate
  // features: a handful informative, a long noisy tail.
  const size_t num_features = 400;
  std::vector<double> scores(num_features);
  for (size_t i = 0; i < num_features; ++i) {
    scores[i] = 3000.0 / std::pow(static_cast<double>(i + 1), 0.8);
  }
  svt::Rng shuffle_rng = rng.Fork();
  svt::ScoreVector score_vec(scores);
  const svt::ScoreVector shuffled = score_vec.Shuffled(shuffle_rng);

  const int c = 25;
  const double epsilon = 0.25;
  const double threshold =
      svt::PaperThreshold(shuffled.scores(), static_cast<size_t>(c));

  std::cout << "Selecting " << c << " of " << num_features
            << " features at epsilon = " << epsilon << ", threshold "
            << svt::FormatDouble(threshold, 1) << "\n\n";

  svt::TablePrinter table({"mechanism", "selected", "SER", "FNR",
                           "privacy"});

  {  // What [18] shipped: Alg. 5.
    auto broken = svt::StoddardSvt::Create(epsilon, 1.0, &rng).value();
    std::vector<size_t> sel;
    for (size_t i = 0; i < shuffled.size(); ++i) {
      if (broken->Process(shuffled[i], threshold).is_positive()) {
        sel.push_back(i);
      }
    }
    table.AddRow(
        {"Alg5 (Stoddard, as published)", std::to_string(sel.size()),
         svt::FormatDouble(svt::ScoreErrorRate(sel, shuffled.scores(), c), 3),
         svt::FormatDouble(svt::FalseNegativeRate(sel, shuffled.scores(), c),
                           3),
         "NONE (inf-DP, Thm 3)"});
  }

  {  // The correct mechanism at the same claimed budget.
    svt::SvtOptions o;
    o.epsilon = epsilon;
    o.cutoff = c;
    o.monotonic = true;
    o.allocation = svt::BudgetAllocation::Optimal(c, true);
    svt::Rng run = rng.Fork();
    const auto sel =
        svt::SelectTopCWithSvt(shuffled.scores(), threshold, o, run).value();
    table.AddRow(
        {"Alg7 / SVT-S-1:c^2/3 (correct)", std::to_string(sel.size()),
         svt::FormatDouble(svt::ScoreErrorRate(sel, shuffled.scores(), c), 3),
         svt::FormatDouble(svt::FalseNegativeRate(sel, shuffled.scores(), c),
                           3),
         "eps-DP (Thm 4/5)"});
  }

  table.Print(std::cout);

  std::cout
      << "\nThe broken variant looks better on accuracy — the paper's "
         "point exactly:\n\"When using a correct version of SVT in these "
         "papers, one would get significantly worse accuracy. Since these "
         "papers seek to improve the tradeoff between privacy and utility, "
         "the results in them are thus invalid.\"\n";
  return 0;
}
