// Privacy audit walkthrough: numerically reproduce the paper's Figure 2
// "Privacy Property" row with the closed-form auditor.
//
// For each published SVT variant this example:
//   1. builds its VariantSpec (exactly the Figure 1 parameterization),
//   2. evaluates output probabilities on the paper's counterexample,
//   3. reports the measured log-probability ratio next to the claimed ε —
//      making the difference between "proved private" and "claimed
//      private" tangible.

#include <cmath>
#include <iostream>

#include "audit/counterexamples.h"
#include "audit/privacy_auditor.h"
#include "core/variant_spec.h"
#include "eval/reporting.h"

int main() {
  const double epsilon = 1.0;
  const int c = 2;

  std::cout << "Auditing the six published SVT variants at claimed epsilon "
            << epsilon << ", c = " << c << "\n\n";
  svt::TablePrinter table({"variant", "instance", "ln Pr[D]", "ln Pr[D']",
                           "|ln ratio|", "verdict"});

  const auto add_row = [&](const svt::VariantSpec& spec,
                           const svt::NeighborInstance& inst,
                           double allowed) {
    const svt::AuditReport r = svt::AuditInstance(spec, inst);
    const double ratio = r.abs_log_ratio();
    std::string verdict;
    if (std::isinf(ratio)) {
      verdict = "INFINITE ratio -> not DP at all";
    } else if (ratio > allowed + 1e-6) {
      verdict = "VIOLATES claimed eps";
    } else {
      verdict = "within bound";
    }
    table.AddRow({spec.name, inst.name,
                  std::isinf(r.log_p_d) ? "-inf"
                                        : svt::FormatDouble(r.log_p_d, 3),
                  std::isinf(r.log_p_dprime)
                      ? "-inf"
                      : svt::FormatDouble(r.log_p_dprime, 3),
                  std::isinf(ratio) ? "inf" : svt::FormatDouble(ratio, 3),
                  verdict});
  };

  // Alg. 1 (the paper's fix) on the worst-case shift instance: private.
  add_row(svt::MakeAlg1Spec(epsilon, 1.0, c),
          svt::ShiftInstance(4, "_T_T"), epsilon);

  // Alg. 2 (Dwork-Roth book): private.
  add_row(svt::MakeAlg2Spec(epsilon, 1.0, c),
          svt::ShiftInstance(4, "_T_T"), epsilon);

  // Alg. 3 (Roth's notes): the Appendix 10.1 instance; ratio (m-1)ε/2.
  add_row(svt::MakeAlg3Spec(epsilon, 1.0, 1), svt::Alg3Counterexample(9),
          epsilon);

  // Alg. 4 (Lee-Clifton): exceeds ε, bounded by (1+6c)/4·ε.
  add_row(svt::MakeAlg4Spec(epsilon, 1.0, c),
          svt::Alg4StressInstance(c, 10, 80.0), epsilon);

  // Alg. 5 (Stoddard): Theorem 3's two-query instance, infinite ratio.
  add_row(svt::MakeAlg5Spec(epsilon, 1.0), svt::Alg5Counterexample(),
          epsilon);

  // Alg. 6 (Chen): Theorem 7's instance, ratio >= mε/2.
  add_row(svt::MakeAlg6Spec(epsilon, 1.0), svt::Alg6Counterexample(8),
          epsilon);

  // GPTT (the [2] abstraction): §3.3's instance.
  add_row(svt::MakeGpttSpec(epsilon / 2, epsilon / 2, 1.0),
          svt::GpttCounterexample(8), epsilon);

  table.Print(std::cout);

  // Exhaustive verification for the private variant: enumerate EVERY
  // output pattern and confirm the ratio never exceeds ε.
  std::cout << "\nExhaustive pattern search for Alg. 1 (all outputs over 5 "
               "queries, mixed-direction neighbors):\n";
  const svt::VariantSpec alg1 = svt::MakeAlg1Spec(epsilon, 1.0, c);
  const std::vector<double> qd = {0.0, 0.4, -0.3, 0.9, 0.1};
  const std::vector<double> qdp = {1.0, -0.6, 0.7, -0.1, 1.1};
  const auto search = svt::MaxAbsLogRatioOverPatterns(alg1, qd, qdp, 0.5);
  std::cout << "  max |ln ratio| = "
            << svt::FormatDouble(search.max_abs_log_ratio, 6)
            << " (<= eps = " << epsilon << ") at pattern '"
            << search.argmax_pattern << "'\n";
  return 0;
}
