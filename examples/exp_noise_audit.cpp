// Auditing the exponential-noise SVT variants: the closed-form quadrature
// and the Monte-Carlo simulator are two independent evaluations of the same
// VariantSpec — one integrates the spec's noise structure analytically
// (with hard support clamps for the one-sided roles), the other just runs
// the mechanism. For ExpSVT-Liu24 (arXiv 2407.20068, exponential ρ +
// Laplace ν) and RevSVT-KMS20 (arXiv 2010.00917, all-exponential with ρ
// resampling) this prints both answers per output pattern and checks the
// closed form lands inside the MC confidence interval. The whole audit
// runs twice with the same seed: every number — MC estimates included —
// must reproduce bitwise, demonstrating the deterministic draw-order
// contract end to end.

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "audit/closed_form.h"
#include "audit/monte_carlo.h"
#include "common/rng.h"
#include "core/variant_spec.h"
#include "eval/reporting.h"

namespace {

struct AuditCase {
  svt::VariantSpec spec;
  std::vector<double> answers;
  double threshold;
  std::vector<std::string> patterns;
};

struct AuditRow {
  double closed;
  double mc_p_hat;
  bool agrees;
};

std::vector<AuditCase> MakeCases() {
  std::vector<AuditCase> cases;
  cases.push_back({svt::MakeExpNoiseSpec(1.0, 1.0, 2),
                   {0.5, -0.5, 0.2},
                   0.0,
                   {"T__", "_T_", "TT", "___"}});
  cases.push_back({svt::MakeRevisitedSpec(1.0, 1.0, 2),
                   {0.4, -0.2, 0.1},
                   0.0,
                   {"T__", "_T_", "TT", "___"}});
  return cases;
}

std::vector<AuditRow> AuditOnce(bool print) {
  std::vector<AuditRow> rows;
  for (const AuditCase& c : MakeCases()) {
    if (print) {
      std::cout << c.spec.name << " (rho "
                << (c.spec.rho_kind == svt::NoiseKind::kExponential ? "Exp"
                                                                    : "Lap")
                << ", nu "
                << (c.spec.nu_kind == svt::NoiseKind::kExponential ? "Exp"
                                                                   : "Lap")
                << (c.spec.resample_rho_after_positive
                        ? ", rho resampled after every positive"
                        : "")
                << "):\n";
    }
    svt::TablePrinter table(
        {"pattern", "closed form", "monte carlo", "95% interval", "agree"});
    // A fresh fixed-seed RNG per spec: the MC estimate is a deterministic
    // function of (spec, instance, seed), which run 2 below relies on.
    svt::Rng rng(2024);
    svt::McOptions mc;
    mc.trials = 200000;
    for (const std::string& pattern : c.patterns) {
      const double closed = svt::OutputProbability(
          c.spec, c.answers, c.threshold, svt::PatternFromString(pattern));
      const svt::McEstimate est = svt::EstimateOutputProbability(
          c.spec, c.answers, c.threshold, pattern, rng, mc);
      const bool agrees = closed >= est.lower - 1e-3 &&
                          closed <= est.upper + 1e-3;
      rows.push_back({closed, est.p_hat, agrees});
      std::string interval = "[";
      interval += svt::FormatDouble(est.lower, 4);
      interval += ", ";
      interval += svt::FormatDouble(est.upper, 4);
      interval += "]";
      table.AddRow({pattern, svt::FormatDouble(closed, 6),
                    svt::FormatDouble(est.p_hat, 6), interval,
                    agrees ? "yes" : "NO"});
    }
    if (print) {
      table.Print(std::cout);
      std::cout << "\n";
    }
  }
  return rows;
}

}  // namespace

int main() {
  std::cout << "--- run 1 ---\n";
  const std::vector<AuditRow> first = AuditOnce(/*print=*/true);

  bool all_agree = true;
  for (const AuditRow& r : first) all_agree &= r.agrees;
  std::cout << (all_agree
                    ? "closed form and Monte Carlo agree on every pattern\n"
                    : "ERROR: closed form escaped an MC interval\n");

  std::cout << "--- run 2 (same seeds) ---\n";
  const std::vector<AuditRow> second = AuditOnce(/*print=*/false);
  bool bitwise = first.size() == second.size();
  for (size_t i = 0; bitwise && i < first.size(); ++i) {
    bitwise = first[i].closed == second[i].closed &&
              first[i].mc_p_hat == second[i].mc_p_hat;
  }
  std::cout << (bitwise ? "run 2 reproduced every number bitwise: the audit "
                          "is deterministic given the seed\n"
                        : "ERROR: runs differ\n");
  return all_agree && bitwise ? 0 : 1;
}
