// Quickstart: answer a stream of threshold queries under ε-differential
// privacy with the paper's standard SVT (Alg. 7 / Alg. 1).
//
//   cmake --build build && ./build/examples/example_quickstart
//
// The program asks: "which days did the (private) visitor count exceed
// 1000?" — paying privacy budget only for the days reported, never for the
// days that stayed below.

#include <iostream>
#include <vector>

#include "common/rng.h"
#include "core/budget.h"
#include "core/svt.h"

int main() {
  // Sensitive per-day counts (one user contributes at most 1 per day, so
  // the sensitivity of each count is 1).
  const std::vector<double> daily_visits = {
      312,  489,  950,  1012, 740,  1333, 980, 410,  1220, 515,
      1104, 876,  623,  1490, 333,  1005, 701, 1250, 460,  999};
  const double threshold = 1000.0;

  // We are willing to report at most c = 4 busy days under ε = 0.8.
  svt::SvtOptions options;
  options.epsilon = 0.8;
  options.sensitivity = 1.0;
  options.cutoff = 4;
  options.monotonic = true;  // counting queries: use §4.3's tighter noise
  options.allocation =
      svt::BudgetAllocation::Optimal(options.cutoff, /*monotonic=*/true);

  svt::Rng rng(/*seed=*/2024);
  auto mechanism = svt::SparseVector::Create(options, &rng).value();

  std::cout << "epsilon=" << options.epsilon
            << "  budget split: eps1=" << mechanism->budget().epsilon1
            << " (threshold), eps2=" << mechanism->budget().epsilon2
            << " (queries)\n\n";

  for (size_t day = 0; day < daily_visits.size(); ++day) {
    if (mechanism->exhausted()) {
      std::cout << "day " << day << ": (budget for positive answers "
                << "exhausted; stopping)\n";
      break;
    }
    const svt::Response r = mechanism->Process(daily_visits[day], threshold);
    if (r.is_positive()) {
      std::cout << "day " << day << ": ABOVE " << threshold
                << "  <- consumes budget\n";
    } else {
      std::cout << "day " << day << ": below            <- free!\n";
    }
  }

  std::cout << "\nPositive answers reported: "
            << mechanism->positives_emitted() << " (cap " << options.cutoff
            << "); queries answered: " << mechanism->queries_processed()
            << "\n";
  return 0;
}
