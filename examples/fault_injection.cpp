// A deterministic fault drill: the same overloaded serving schedule run
// under injected shard stalls, shard failures, queue-full bursts and a
// bounded admission queue — twice. Every fault decision is a seeded hash
// of (site, shard, attempt), so run 2 replays run 1 bitwise: the same
// requests shed, the same requests fail, the same deadlines expire, and
// the accepted responses match a fault-free server fed only the accepted
// requests. Faults change WHICH requests run, never the noise of the
// ones that do — which is what makes an incident replayable offline.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "serving/admission.h"
#include "serving/fault_injection.h"
#include "serving/request_batcher.h"
#include "serving/sharded_server.h"

namespace {

constexpr int kRequests = 40;
constexpr int kQueriesPerRequest = 150;

svt::ServingOptions BaseOptions() {
  svt::ServingOptions o;
  o.num_shards = 1;  // single shard: the drill is exactly reproducible
  o.seed = 2026;
  o.mode = svt::ShardMode::kAutoReset;
  o.svt.epsilon = 1.0;
  o.svt.cutoff = 2;
  o.svt.monotonic = true;
  return o;
}

std::vector<double> RequestAnswers(int request) {
  svt::Rng traffic(500 + static_cast<uint64_t>(request));
  std::vector<double> answers(kQueriesPerRequest);
  for (auto& a : answers) {
    a = traffic.NextBernoulli(0.05) ? traffic.NextUniform(80.0, 120.0)
                                    : traffic.NextUniform(0.0, 30.0);
  }
  return answers;
}

struct DrillResult {
  std::vector<svt::RequestOutcome> outcomes;
  std::vector<std::vector<svt::Response>> responses;
};

DrillResult RunDrill(bool verbose) {
  // The storm: 25% of shard executions stall 6us, 10% fail outright,
  // occasional two-request admission bursts shed as if the queue were
  // full — on top of a real cap of 8 and a 15us deadline per request
  // (tight enough that a couple of stalls ahead in the queue expire the
  // requests stuck behind them).
  svt::FaultInjector::Options faults;
  faults.seed = 99;
  faults.shard_stall_probability = 0.25;
  faults.stall_nanos = 6'000;
  faults.shard_failure_probability = 0.10;
  faults.submit_shed_probability = 0.05;
  faults.submit_shed_burst = 2;
  svt::FaultInjector injector(faults);

  svt::VirtualClock clock;  // faults jump time; nothing actually sleeps
  svt::ServingOptions options = BaseOptions();
  options.clock = &clock;
  options.fault_injector = &injector;
  auto server = svt::ShardedSvtServer::Create(options).value();
  svt::RequestBatcher::Options bo;
  bo.max_pending = 8;
  bo.shed_policy = svt::ShedPolicy::kReject;
  svt::RequestBatcher batcher(server.get(), bo);

  DrillResult result;
  result.outcomes.assign(kRequests, svt::RequestOutcome::kPending);
  result.responses.resize(kRequests);
  std::vector<std::vector<double>> answers(kRequests);
  int shed = 0;
  for (int r = 0; r < kRequests; ++r) {
    answers[r] = RequestAnswers(r);
    svt::SubmitOptions submit;
    submit.deadline_nanos = clock.NowNanos() + 15'000;
    const svt::Result<uint64_t> admitted =
        batcher.Submit(static_cast<uint64_t>(r), answers[r], 50.0,
                       &result.responses[r], submit, &result.outcomes[r]);
    if (!admitted.ok()) {
      ++shed;
      // Record the admission-time reason in the drill transcript.
      result.outcomes[r] =
          admitted.status().code() == svt::StatusCode::kDeadlineExceeded
              ? svt::RequestOutcome::kDeadlineExceeded
              : svt::RequestOutcome::kShardFailed;
    }
    if ((r + 1) % 8 == 0) {
      batcher.Drain();
      clock.Advance(5'000);
    }
  }
  batcher.Drain();

  if (verbose) {
    int counts[5] = {0, 0, 0, 0, 0};
    for (const svt::RequestOutcome oc : result.outcomes) {
      ++counts[static_cast<int>(oc)];
    }
    const svt::ServingStats stats = server->TotalStats();
    const svt::FaultInjector::Counters fired = injector.counters();
    std::cout << "  outcomes: " << counts[1] << " ok, " << counts[2]
              << " deadline-exceeded, " << counts[4]
              << " failed/shed (admission sheds: " << shed << ")\n"
              << "  faults fired: " << fired.stalls << " stalls ("
              << stats.stall_nanos / 1000 << "us), " << fired.failures
              << " shard failures, " << fired.submit_sheds
              << " injected queue-full sheds\n"
              << "  server: " << stats.queries << " queries executed, "
              << stats.deadline_misses << " deadline misses, " << stats.shed
              << " sheds\n";
  }
  return result;
}

}  // namespace

int main() {
  std::cout << "--- fault drill, run 1 ---\n";
  const DrillResult first = RunDrill(/*verbose=*/true);
  std::cout << "--- fault drill, run 2 (same seeds) ---\n";
  const DrillResult second = RunDrill(/*verbose=*/true);

  if (!(first.outcomes == second.outcomes &&
        first.responses == second.responses)) {
    std::cout << "\nERROR: fault drill is not reproducible\n";
    return 1;
  }
  std::cout << "\nruns 1 and 2 are bitwise identical: the storm replays "
               "exactly (seeded fault decisions)\n";

  // The contract's second half: a fault-free server fed only the accepted
  // requests, in order, produces the same responses — the faults never
  // touched the noise streams of the requests that ran.
  auto reference = svt::ShardedSvtServer::Create(BaseOptions()).value();
  svt::RequestBatcher ref_batcher(reference.get());
  std::vector<std::vector<double>> answers(kRequests);
  std::vector<std::vector<svt::Response>> ref_responses(kRequests);
  for (int r = 0; r < kRequests; ++r) {
    if (first.outcomes[r] != svt::RequestOutcome::kOk) continue;
    answers[r] = RequestAnswers(r);
    ref_batcher.Submit(static_cast<uint64_t>(r), answers[r], 50.0,
                       &ref_responses[r]);
  }
  ref_batcher.Drain();
  for (int r = 0; r < kRequests; ++r) {
    if (first.outcomes[r] != svt::RequestOutcome::kOk) continue;
    if (first.responses[r] != ref_responses[r]) {
      std::cout << "ERROR: accepted request " << r
                << " diverges from the fault-free reference\n";
      return 1;
    }
  }
  std::cout << "accepted responses match a fault-free run restricted to "
               "the accepted set: faults shed requests, never noise\n";
  return 0;
}
